package dist

import (
	"context"
	"sync/atomic"

	"kronlab/internal/dist/transport"
	"kronlab/internal/graph"
)

// DefaultBatchSize is the number of edges buffered per destination before
// a message is flushed when Config.BatchSize is unset, mirroring the
// aggregation HPC generators use to amortize message overhead. 1024 is
// the benchmarked sweet spot on the simulated transport (README
// §Performance): smaller batches pay per-message overhead, much larger
// ones only grow per-rank staging memory (O(R·BatchSize)) without
// measurable throughput gain.
const DefaultBatchSize = 1024

// Exchange runs one all-to-all edge exchange on this rank. produce is
// called with an emit function that routes a single edge to a destination
// rank; handle receives every edge delivered to this rank (from any rank,
// including itself). Exchange returns when this rank has produced all its
// edges and received the EOF markers of every rank, or with the
// cancellation cause when the run is torn down mid-exchange (another rank
// failed, or RunContext's context was cancelled).
//
// emit reports whether the edge was accepted; it returns false once the
// exchange is cancelled, after which produce should stop generating.
// Batch buffers are pooled: a delivered Message's Edges slice is recycled
// after handle has seen its edges, so handle must copy any edge it
// retains (graph.Edge values are copied by normal assignment/append).
//
// Exchange is the legacy per-edge surface over exchangeBlocks, kept for
// callers that route edges one at a time; the engine itself ships whole
// expansion blocks through shipper.route.
func (rk *Rank) Exchange(produce func(emit func(to int, e graph.Edge) bool), handle func(e graph.Edge)) error {
	return rk.exchangeBlocks(DefaultBatchSize, func(s *shipper) {
		produce(func(to int, e graph.Edge) bool { return s.stage(to, 0, e) })
	}, func(_ int, edges []graph.Edge) {
		for _, e := range edges {
			handle(e)
		}
	})
}

// shipper stages outgoing edges into pooled per-destination batch
// buffers and flushes them through Rank.send. Buffers flush at tile
// boundaries (so a batch never mixes tiles — the framing recovering
// sinks deduplicate on) and at the batch threshold. Each flush hands the
// staged buffer to the transport and immediately checks out a fresh one
// from the pool, so staging the next batch overlaps the in-flight
// delivery — per-destination double buffering.
//
// On transports that offer transport.TrySender, a flush that would block
// does not stall expansion: the full batch is parked as the
// destination's one in-flight pending batch and the rank keeps
// expanding; the pending batch is completed — non-blocking retry first,
// then the blocking send — before anything else is sent to that
// destination, so per-(tile, destination) substream order is exactly
// the blocking path's. Fault-armed runs keep the blocking path
// unconditionally: crash countdowns and delivery faults are scheduled
// against its deterministic send cadence.
type shipper struct {
	rk      *Rank
	c       *Cluster
	rx      *receiver
	onRecv  func(Message) // rx.recv as a stored method value: one alloc per exchange, reused by every SendBatch
	batch   int
	shard   int                 // home freelist shard (shardFor(rank)) for bulk fill/spill
	try     transport.TrySender // non-nil on clean runs over a TrySender transport
	bufs    [][]graph.Edge      // staged batch per destination (nil until targeted)
	pending []Message           // parked in-flight batch per destination (Edges nil when none)
	tile    []int               // tile of the staged batch, per destination
	nspare  int
	spare   [spareCap][]graph.Edge // rank-local recycled buffers (lock-free)
	aborted bool
}

// newShipper wires one rank's staging state to the cluster's transport:
// the per-destination buffers, the inline receiver, and the progress
// callback SendBatch uses to deliver this rank's inbound batches while
// an outbound send blocks.
func newShipper(rk *Rank, batch int, handle func(tile int, edges []graph.Edge)) *shipper {
	c := rk.c
	s := &shipper{rk: rk, c: c, batch: batch, shard: shardFor(rk.id),
		rx:   &receiver{c: c, id: rk.id, epoch: c.epoch, handle: handle},
		bufs: make([][]graph.Edge, c.r), tile: make([]int, c.r)}
	s.rx.s = s
	s.onRecv = s.rx.recv
	if c.faults == nil {
		if ts, ok := c.tr.(transport.TrySender); ok {
			s.try = ts
			s.pending = make([]Message, c.r)
		}
	}
	return s
}

// spareCap bounds the rank-local spare stack; releases beyond it spill
// to the shared freelist one at a time (rare: it means this rank is
// receiving far more batches than it sends). The stack is an array
// embedded in the shipper so recycling allocates nothing at all.
const spareCap = 64

// getBuf returns an empty staging buffer: the rank-local spare stack
// first — every batch this rank receives refills it, so in steady state
// recycling never touches the shared freelist or its lock — then a bulk
// refill from the shared freelist, then a fresh allocation. Exchange is
// single-goroutine per rank (inline progress engine), which is what
// makes the spare stack safe without synchronization.
func (s *shipper) getBuf() []graph.Edge {
	if s.nspare == 0 {
		s.nspare = len(poolFill(s.shard, s.spare[:0], 8))
	}
	atomic.AddInt64(&s.c.bufsOut, 1)
	if s.nspare > 0 {
		s.nspare--
		b := s.spare[s.nspare]
		s.spare[s.nspare] = nil
		return b
	}
	return make([]graph.Edge, 0, s.batch)
}

// release recycles a delivered or abandoned batch buffer into the spare
// stack. Buffers in spare are in the same not-checked-out state as the
// shared freelist's, so the exchange spills them back there when it ends
// (one lock for the lot).
func (s *shipper) release(b []graph.Edge) {
	if cap(b) == 0 {
		return
	}
	atomic.AddInt64(&s.c.bufsOut, -1)
	if s.nspare < spareCap {
		s.spare[s.nspare] = b[:0]
		s.nspare++
		return
	}
	poolSpill(s.shard, [][]graph.Edge{b})
}

// receiver is the inline progress engine of one rank's exchange. The
// rank drains its own inbox from its producing goroutine — inside a send
// that would otherwise block, opportunistically after every flush, and
// while waiting for EOF markers at the end — the way an MPI library
// progresses receives inside blocking sends. One goroutine per rank
// means a delivered batch is handled on the core that just staged
// outgoing ones (cache-warm on the simulated single-box cluster) and the
// transport needs no receiver goroutines or completion channels at all.
type receiver struct {
	c      *Cluster
	s      *shipper // for rank-local buffer recycling
	id     int
	epoch  int64
	eofs   int
	handle func(tile int, edges []graph.Edge)
}

// recv applies one delivered message: epoch fence, handler, buffer
// recycling, EOF accounting.
func (rx *receiver) recv(m Message) {
	if m.Epoch != rx.epoch {
		// Epoch fence: a batch from another attempt is dropped whole
		// (its EOF marker included — the attempt it ends is already
		// torn down).
		atomic.AddInt64(&rx.c.stats.StaleBatches, 1)
		rx.s.release(m.Edges)
		return
	}
	if len(m.Edges) > 0 {
		rx.handle(m.Tile, m.Edges)
	}
	rx.s.release(m.Edges)
	if m.EOF {
		rx.eofs++
	}
}

// progress drains every message the transport has already buffered for
// this rank without blocking — a no-op when nothing is pending.
func (rx *receiver) progress() {
	for {
		m, ok := rx.c.tr.TryRecv(rx.id)
		if !ok {
			return
		}
		rx.recv(m)
	}
}

// send delivers one message to a peer's inbox, observing scheduled
// faults and updating traffic counters. It returns false without
// delivering when the run is cancelled, when the sending rank's
// scheduled crash fires, or when the message exhausts its redelivery
// budget — in the last two cases the run is first cancelled with the
// fault as its cause, so the failure is loud rather than a silently
// missing edge batch.
//
// Rank-local messages skip the transport: with the receiver inline on
// the sending goroutine the batch is applied directly, as an MPI rank
// does for self-addressed traffic. Cross-rank batches go through
// Transport.SendBatch with the shipper's progress callback, so while a
// send blocks the rank keeps receiving its own traffic — the progress
// that makes the inline engine deadlock-free: any rank blocked sending
// is itself one recv away from freeing a peer.
func (s *shipper) send(to int, m Message) bool {
	rk, c := s.rk, s.c
	m.From = rk.id
	m.Dest = to
	m.Epoch = c.epoch
	if f := c.faults; f != nil {
		if err := f.crash(rk.id, FaultMidExchange); err != nil {
			c.cancel(err)
			return false
		}
		if to != rk.id {
			ok, err := f.deliver(c.ctx, rk.id, to)
			if err != nil {
				c.cancel(err)
				return false
			}
			if !ok {
				return false
			}
		}
	}
	// Refuse delivery on a torn-down run before even attempting it: a
	// buffered inbox on a dead run would strand the batch (and its
	// pooled buffer) where no receiver will ever drain it.
	if c.ctx.Err() != nil {
		return false
	}
	if to == rk.id {
		atomic.AddInt64(&c.stats.Messages, 1)
		s.rx.recv(m)
		return true
	}
	if err := c.tr.SendBatch(c.ctx, m, s.onRecv); err != nil {
		// A transport failure (dead peer link) must be loud, not a
		// silently missing batch: make it the run's cancellation cause.
		if c.ctx.Err() == nil {
			c.cancel(err)
		}
		return false
	}
	atomic.AddInt64(&c.stats.Messages, 1)
	if len(m.Edges) > 0 {
		atomic.AddInt64(&c.stats.EdgesRouted, int64(len(m.Edges)))
		atomic.AddInt64(&c.stats.BytesSent, int64(len(m.Edges))*edgeWireBytes)
	}
	return true
}

// sendStats updates the traffic counters for one accepted batch — the
// same accounting shipper.send does after a successful SendBatch.
func (s *shipper) sendStats(m Message) {
	c := s.c
	atomic.AddInt64(&c.stats.Messages, 1)
	if len(m.Edges) > 0 {
		atomic.AddInt64(&c.stats.EdgesRouted, int64(len(m.Edges)))
		atomic.AddInt64(&c.stats.BytesSent, int64(len(m.Edges))*edgeWireBytes)
	}
}

// flushPending completes the parked in-flight batch for one destination.
// FIFO demands it lands before anything else is sent there: one
// non-blocking retry first (the common case — the queue drained while
// this rank kept expanding), then the blocking send with inline
// progress. On failure the batch stays in pending for the abort path to
// recycle exactly once.
func (s *shipper) flushPending(to int) bool {
	m := s.pending[to]
	if m.Edges == nil {
		return true
	}
	if ok, err := s.try.TrySendBatch(m); err != nil {
		if s.c.ctx.Err() == nil {
			s.c.cancel(err)
		}
		s.aborted = true
		return false
	} else if ok {
		s.pending[to] = Message{}
		s.sendStats(m)
		return true
	}
	if !s.send(to, m) {
		s.aborted = true
		return false
	}
	s.pending[to] = Message{}
	return true
}

// flush ships the staged batch for one destination (or a bare EOF
// marker). On failure the shipper is aborted: the run is torn down and
// nothing more will be accepted.
//
// With a TrySender transport the cross-rank non-EOF path never blocks:
// an accepted try-send completes immediately, a refused one parks the
// batch as the destination's pending in-flight batch and expansion
// continues — the second buffer that lets routing overlap a congested
// link. EOF markers, self-sends and fault-armed runs take the blocking
// path (an EOF must be delivered before the flush loop can report it).
func (s *shipper) flush(to int, eof bool) bool {
	b := s.bufs[to]
	if len(b) == 0 && !eof && (s.pending == nil || s.pending[to].Edges == nil) {
		return true
	}
	// Complete the destination's in-flight batch first — substream order.
	if s.try != nil && !s.flushPending(to) {
		return false
	}
	if len(b) == 0 && !eof {
		return true
	}
	if s.try != nil && !eof && to != s.rk.id && len(b) > 0 {
		// Mirror send's refusal on a torn-down run: an accepted try-send
		// into a dead run's inbox would strand the buffer.
		if s.c.ctx.Err() != nil {
			s.aborted = true
			return false
		}
		m := Message{From: s.rk.id, Dest: to, Epoch: s.c.epoch, Tile: s.tile[to], Edges: b}
		ok, err := s.try.TrySendBatch(m)
		if err != nil {
			if s.c.ctx.Err() == nil {
				s.c.cancel(err)
			}
			s.aborted = true
			return false
		}
		if ok {
			s.sendStats(m)
		} else {
			// Transport full: park the batch in flight and keep expanding.
			s.pending[to] = m
		}
		s.bufs[to] = s.getBuf()
		// Drain our own backlog while we are here so in-flight buffers
		// stay O(R + inbox) instead of piling up until the EOF drain —
		// and so a parked batch's destination eventually drains too.
		s.rx.progress()
		return true
	}
	if !s.send(to, Message{From: s.rk.id, Tile: s.tile[to], Edges: b, EOF: eof}) {
		s.aborted = true
		return false
	}
	if eof {
		s.bufs[to] = nil
	} else {
		// Double buffer: the sent batch is recycled by the receiver;
		// check out a replacement now so staging never waits on it.
		s.bufs[to] = s.getBuf()
		// Drain our own backlog while we are here so in-flight buffers
		// stay O(R + inbox) instead of piling up until the EOF drain.
		s.rx.progress()
	}
	return true
}

// route radix-partitions one expansion block across the per-destination
// staging buffers: owner is bound at plan time, so the loop body is the
// owner hash, an append and a threshold check per edge — the routed hot
// path of the blocked kernel.
func (s *shipper) route(tile int, block []graph.Edge, owner BoundOwnerFunc) bool {
	if s.aborted {
		return false
	}
	bufs, tiles := s.bufs, s.tile
	for _, e := range block {
		to := owner(e.U, e.V)
		b := bufs[to]
		if len(b) == 0 {
			if b == nil {
				b = s.getBuf()
			}
			tiles[to] = tile
		} else if tiles[to] != tile {
			// Tile boundary: ship the previous tile's partial batch so a
			// batch never mixes tiles. Boundaries are rare (tiles are
			// large), so this costs nothing on the hot path.
			if !s.flush(to, false) {
				return false
			}
			b = bufs[to]
			tiles[to] = tile
		}
		b = append(b, e)
		bufs[to] = b
		if len(b) >= s.batch && !s.flush(to, false) {
			return false
		}
	}
	return true
}

// stage routes a single edge — the per-edge reference path used by the
// legacy Exchange surface and by fault-armed runs, which need
// edge-granular crash windows between stages. Identical staging and
// flush behavior to route, one edge at a time.
func (s *shipper) stage(to, tile int, e graph.Edge) bool {
	if s.aborted {
		return false
	}
	b := s.bufs[to]
	if len(b) == 0 {
		if b == nil {
			b = s.getBuf()
		}
		s.tile[to] = tile
	} else if s.tile[to] != tile {
		if !s.flush(to, false) {
			return false
		}
		b = s.bufs[to]
		s.tile[to] = tile
	}
	b = append(b, e)
	s.bufs[to] = b
	if len(b) >= s.batch && !s.flush(to, false) {
		return false
	}
	return true
}

// exchangeBlocks is the batched all-to-all transport the engine runs on:
// produce stages outgoing edges through the shipper, handle receives
// whole delivered batches with their tile framing. Every batch carries
// the plan tile its edges came from (buffers flush at tile boundaries so
// batches never mix tiles) and the run epoch stamped by send. The
// receiver drops whole batches from another epoch — residue a previous
// attempt could in principle leave behind — counting them in
// Stats.StaleBatches, so a recovering run can never double-apply or
// misattribute a stale batch. Within one attempt all epochs match and
// the fence is a single comparison per batch.
//
// Receiving is inline — progress on send — so inbox buffers drain while
// expansion is still running without a receiver goroutine per rank: the
// rank drains opportunistically at every flush and inside any send that
// blocks, then waits out the remaining EOF markers after producing. A
// delivered batch's Edges slice is recycled after handle returns, so
// handle must copy edges it retains.
func (rk *Rank) exchangeBlocks(batch int, produce func(s *shipper), handle func(tile int, edges []graph.Edge)) error {
	c := rk.c
	s := newShipper(rk, batch, handle)
	defer func() {
		// Return the rank-local spares to the shared freelist in one
		// locked push, so the next run (or cluster) starts warm.
		poolSpill(s.shard, s.spare[:s.nspare])
		s.nspare = 0
	}()
	produce(s)
	for to := 0; to < c.r && !s.aborted; to++ {
		s.flush(to, true)
	}
	// Drain until every rank's EOF marker (our own included) arrives.
	for !s.aborted && s.rx.eofs < c.r {
		m, err := c.tr.Recv(c.ctx, rk.id)
		if err != nil {
			if c.ctx.Err() == nil {
				c.cancel(err)
			}
			s.aborted = true
			break
		}
		s.rx.recv(m)
	}
	if s.aborted || c.ctx.Err() != nil {
		// Nothing will deliver the staged batches now; recycle them or
		// they leak from the pool on every aborted run.
		for to := range s.bufs {
			if s.bufs[to] != nil {
				s.release(s.bufs[to])
				s.bufs[to] = nil
			}
		}
		// Parked in-flight batches were never accepted by the transport,
		// so their buffers are still ours to recycle.
		for to := range s.pending {
			if s.pending[to].Edges != nil {
				s.release(s.pending[to].Edges)
				s.pending[to] = Message{}
			}
		}
		return context.Cause(c.ctx)
	}
	return nil
}

// OwnerFunc maps a product edge to the rank that stores it, given the
// cluster size. The paper leaves the storage mapping open ("some mapping
// scheme"); the functions below provide the common choices. An OwnerFunc
// is an Owner: its generic Bind closes over r. Owners whose per-edge
// work depends on r (OwnerByBlock's block size) should implement Owner
// directly so Bind resolves that work once — see BlockOwner.
type OwnerFunc func(u, v int64, r int) int

// BoundOwnerFunc is an owner map with the cluster size already resolved —
// what the routed kernel calls per edge in its hottest loop.
type BoundOwnerFunc func(u, v int64) int

// Owner maps generated edges to storing ranks. Bind is called once per
// run attempt with the cluster size, so implementations resolve every
// r-dependent parameter at plan time and return pure per-edge
// arithmetic. Config.Owner must be a nil interface (not a typed nil) to
// disable routing.
type Owner interface {
	Bind(r int) BoundOwnerFunc
}

// Bind implements Owner by closing over r.
func (f OwnerFunc) Bind(r int) BoundOwnerFunc {
	return func(u, v int64) int { return f(u, v, r) }
}

// OwnerBySource assigns edges to ranks by a multiplicative hash of the
// source endpoint — 1D vertex partitioning of the product graph.
var OwnerBySource OwnerFunc = func(u, _ int64, r int) int {
	h := uint64(u) * 0x9e3779b97f4a7c15
	return int(h % uint64(r))
}

// sourceHashOwner is OwnerBySource in pre-bound form: Bind returns a
// closure with the hash inlined, so the routed hot loop pays one
// indirect call per edge instead of the two (bound wrapper → OwnerFunc)
// the generic OwnerFunc.Bind costs. The engine substitutes it for a nil
// owner; both forms compute identical destinations.
type sourceHashOwner struct{}

// Bind implements Owner.
func (sourceHashOwner) Bind(r int) BoundOwnerFunc {
	rr := uint64(r)
	return func(u, _ int64) int {
		return int((uint64(u) * 0x9e3779b97f4a7c15) % rr)
	}
}

// OwnerByEdge hashes both endpoints, spreading even a single hub vertex's
// edges across ranks (2D-style edge partitioning).
var OwnerByEdge OwnerFunc = func(u, v int64, r int) int {
	h := uint64(u)*0x9e3779b97f4a7c15 ^ (uint64(v)*0xc2b2ae3d27d4eb4f + 0x165667b19e3779f9)
	return int(h % uint64(r))
}

// BlockOwner assigns contiguous source-vertex blocks of size ⌈NC/r⌉ —
// the layout a CSR-partitioned distributed graph store would use. It is
// the plan-resolved form of OwnerByBlock: Bind fixes the block size
// once, so the per-edge hot loop is a bare division (benchmarked in
// owner_bench_test.go against the unbound and the retired
// atomically-cached forms).
type BlockOwner struct {
	NC int64 // product vertex count n_A·n_B
}

// Bind implements Owner.
func (o BlockOwner) Bind(r int) BoundOwnerFunc {
	per := (o.NC + int64(r) - 1) / int64(r)
	last := r - 1
	return func(u, _ int64) int {
		d := int(u / per)
		if d > last {
			d = last
		}
		return d
	}
}

// OwnerByBlock is BlockOwner in OwnerFunc form, for callers that carry
// owner maps as plain functions. The block size is recomputed per call;
// routed engine runs should pass BlockOwner directly so it is resolved
// once at plan time instead.
func OwnerByBlock(nC int64) OwnerFunc {
	return func(u, _ int64, r int) int {
		per := (nC + int64(r) - 1) / int64(r)
		o := int(u / per)
		if o >= r {
			o = r - 1
		}
		return o
	}
}
