package dist

import (
	"fmt"
	"math"
	"sync/atomic"

	"kronlab/internal/core"
	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// Result is the outcome of a distributed generation: the product edges
// stored at each rank (owner-routed) plus traffic statistics.
type Result struct {
	NC      int64          // product vertex count n_A·n_B
	PerRank [][]graph.Edge // arcs stored by each rank
	Stats   Stats
}

// TotalStored returns the total number of arcs stored across ranks.
func (res *Result) TotalStored() int64 {
	var t int64
	for _, s := range res.PerRank {
		t += int64(len(s))
	}
	return t
}

// MaxRankStorage returns the largest per-rank arc count — the paper's
// per-processor storage term O(|E_A|/R + |E_B|) plus owned output.
func (res *Result) MaxRankStorage() int64 {
	var m int64
	for _, s := range res.PerRank {
		if int64(len(s)) > m {
			m = int64(len(s))
		}
	}
	return m
}

// Collect merges all per-rank stored arcs into a single Graph — the
// oracle check that the distributed run produced exactly C = A ⊗ B.
func (res *Result) Collect() (*graph.Graph, error) {
	var arcs []graph.Edge
	for _, s := range res.PerRank {
		arcs = append(arcs, s...)
	}
	return graph.New(res.NC, arcs)
}

// PartitionArcs splits arcs into parts contiguous blocks of near-equal
// size (the "evenly distributed across the R processors" of Sec. III).
// Parts beyond len(arcs) are empty.
func PartitionArcs(arcs []graph.Edge, parts int) [][]graph.Edge {
	out := make([][]graph.Edge, parts)
	n := int64(len(arcs))
	p := int64(parts)
	for i := int64(0); i < p; i++ {
		lo := i * n / p
		hi := (i + 1) * n / p
		out[i] = arcs[lo:hi]
	}
	return out
}

// Generate1D runs the paper's Sec. III generator on a simulated cluster
// of r ranks: B is replicated on every rank, the arcs of A are evenly
// distributed, rank ρ expands C_ρ = A_ρ ⊗ B, and every generated edge is
// routed to owner(u, v, r) for storage. Per-rank memory is
// O(|E_A|/R + |E_B| + stored), time O(|E_A|·|E_B|/R).
func Generate1D(a, b *graph.Graph, r int, owner OwnerFunc) (*Result, error) {
	if owner == nil {
		owner = OwnerBySource
	}
	c, err := NewCluster(r)
	if err != nil {
		return nil, err
	}
	parts := PartitionArcs(a.ArcList(), r)
	res := &Result{NC: a.NumVertices() * b.NumVertices(), PerRank: make([][]graph.Edge, r)}
	err = c.Run(func(rk *Rank) error {
		var stored []graph.Edge
		rk.Exchange(func(emit func(to int, e graph.Edge)) {
			core.StreamProductArcs(parts[rk.ID()], b, func(u, v int64) bool {
				atomic.AddInt64(&c.stats.EdgesGenerated, 1)
				emit(owner(u, v, r), graph.Edge{U: u, V: v})
				return true
			})
		}, func(e graph.Edge) {
			stored = append(stored, e)
		})
		res.PerRank[rk.ID()] = stored
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = c.Stats()
	return res, nil
}

// Grid2D is the processor grid of Rem. 1: R½ = ⌈√R⌉ columns of A-parts by
// Q = ⌈R/R½⌉ rows of B-parts. The paper's assignment
// C_ρ = A_{ρ%R½} ⊗ B_{⌊ρ/R½⌋} covers every (A-part, B-part) tile only when
// R = R½·Q exactly; for general R we assign the R½·Q tiles round-robin to
// ranks (tile t → rank t % R), so some ranks own two tiles — a correctness
// completion of the paper's sketch.
type Grid2D struct {
	RHalf, Q int
}

// NewGrid2D returns the 2D decomposition for r ranks.
func NewGrid2D(r int) Grid2D {
	rh := int(math.Ceil(math.Sqrt(float64(r))))
	q := (r + rh - 1) / rh
	return Grid2D{RHalf: rh, Q: q}
}

// Tiles returns the number of (A-part, B-part) tiles R½·Q.
func (g Grid2D) Tiles() int { return g.RHalf * g.Q }

// TileOf returns the (A-part, B-part) coordinates of tile t.
func (g Grid2D) TileOf(t int) (aPart, bPart int) { return t % g.RHalf, t / g.RHalf }

// Generate2D runs the Rem. 1 generator: both factors' arcs are
// partitioned (A into R½ parts, B into Q parts) and each rank expands its
// tile(s) A_i ⊗ B_j. Per-rank replicated storage drops from O(|E_B|) to
// O(|E_A|/R½ + |E_B|/Q), enabling weak scaling to O(|E_C|) processors.
func Generate2D(a, b *graph.Graph, r int, owner OwnerFunc) (*Result, error) {
	if owner == nil {
		owner = OwnerBySource
	}
	c, err := NewCluster(r)
	if err != nil {
		return nil, err
	}
	grid := NewGrid2D(r)
	aParts := PartitionArcs(a.ArcList(), grid.RHalf)
	bParts := PartitionArcs(b.ArcList(), grid.Q)
	// Pre-build each B-part as a Graph so expansion can stream against
	// CSR; vertex count is preserved so γ indices stay global.
	bGraphs := make([]*graph.Graph, grid.Q)
	for j := range bGraphs {
		bGraphs[j], err = graph.New(b.NumVertices(), bParts[j])
		if err != nil {
			return nil, fmt.Errorf("dist: building B part %d: %w", j, err)
		}
	}
	res := &Result{NC: a.NumVertices() * b.NumVertices(), PerRank: make([][]graph.Edge, r)}
	err = c.Run(func(rk *Rank) error {
		var stored []graph.Edge
		rk.Exchange(func(emit func(to int, e graph.Edge)) {
			for t := rk.ID(); t < grid.Tiles(); t += r {
				ai, bj := grid.TileOf(t)
				core.StreamProductArcs(aParts[ai], bGraphs[bj], func(u, v int64) bool {
					atomic.AddInt64(&c.stats.EdgesGenerated, 1)
					emit(owner(u, v, r), graph.Edge{U: u, V: v})
					return true
				})
			}
		}, func(e graph.Edge) {
			stored = append(stored, e)
		})
		res.PerRank[rk.ID()] = stored
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = c.Stats()
	return res, nil
}

// CountOnly generates the product on r ranks without routing or storing
// edges — the pure expansion throughput used by the generation benchmarks
// (experiment E2). It returns the number of edges generated.
func CountOnly(a, b *graph.Graph, r int, twoD bool) (int64, error) {
	c, err := NewCluster(r)
	if err != nil {
		return 0, err
	}
	var total int64
	if !twoD {
		parts := PartitionArcs(a.ArcList(), r)
		err = c.Run(func(rk *Rank) error {
			var local int64
			core.StreamProductArcs(parts[rk.ID()], b, func(u, v int64) bool {
				local++
				return true
			})
			atomic.AddInt64(&total, local)
			return nil
		})
	} else {
		grid := NewGrid2D(r)
		aParts := PartitionArcs(a.ArcList(), grid.RHalf)
		bParts := PartitionArcs(b.ArcList(), grid.Q)
		bGraphs := make([]*graph.Graph, grid.Q)
		for j := range bGraphs {
			bGraphs[j], err = graph.New(b.NumVertices(), bParts[j])
			if err != nil {
				return 0, err
			}
		}
		err = c.Run(func(rk *Rank) error {
			var local int64
			for t := rk.ID(); t < grid.Tiles(); t += r {
				ai, bj := grid.TileOf(t)
				core.StreamProductArcs(aParts[ai], bGraphs[bj], func(u, v int64) bool {
					local++
					return true
				})
			}
			atomic.AddInt64(&total, local)
			return nil
		})
	}
	if err != nil {
		return 0, err
	}
	return total, nil
}

// EffectiveParallelism1D returns the number of ranks that receive any work
// under 1D partitioning: min(R, |arcs_A|) — the Rem. 1 scalability wall.
func EffectiveParallelism1D(a *graph.Graph, r int) int {
	if int64(r) > a.NumArcs() {
		return int(a.NumArcs())
	}
	return r
}

// EffectiveParallelism2D returns the number of ranks with work under the
// 2D decomposition: min(R, arcs_A·arcs_B tiles with both parts nonempty).
func EffectiveParallelism2D(a, b *graph.Graph, r int) int {
	grid := NewGrid2D(r)
	aBusy := grid.RHalf
	if int64(aBusy) > a.NumArcs() {
		aBusy = int(a.NumArcs())
	}
	bBusy := grid.Q
	if int64(bBusy) > b.NumArcs() {
		bBusy = int(b.NumArcs())
	}
	busy := aBusy * bBusy
	if busy > r {
		busy = r
	}
	return busy
}

// Generate1DToStore runs the 1D generator with each rank streaming its
// owned edges to its own shard of an on-disk store — the full
// generate-route-store pipeline of Sec. III with O(batch) memory per rank
// regardless of |E_C|. The owner map is forced to shard-per-rank routing.
func Generate1DToStore(a, b *graph.Graph, r int, dir string) (*store.Store, Stats, error) {
	c, err := NewCluster(r)
	if err != nil {
		return nil, Stats{}, err
	}
	parts := PartitionArcs(a.ArcList(), r)
	counts := make([]int64, r)
	errs := make([]error, r)
	runErr := c.Run(func(rk *Rank) error {
		sw, err := store.NewShardWriter(dir, rk.ID())
		if err != nil {
			errs[rk.ID()] = err
			return err
		}
		rk.Exchange(func(emit func(to int, e graph.Edge)) {
			core.StreamProductArcs(parts[rk.ID()], b, func(u, v int64) bool {
				atomic.AddInt64(&c.stats.EdgesGenerated, 1)
				emit(OwnerBySource(u, v, r), graph.Edge{U: u, V: v})
				return true
			})
		}, func(e graph.Edge) {
			if errs[rk.ID()] == nil {
				errs[rk.ID()] = sw.Append(e.U, e.V)
			}
		})
		counts[rk.ID()] = sw.Count()
		if err := sw.Close(); err != nil && errs[rk.ID()] == nil {
			errs[rk.ID()] = err
		}
		return errs[rk.ID()]
	})
	if runErr != nil {
		return nil, Stats{}, runErr
	}
	nC := a.NumVertices() * b.NumVertices()
	if err := store.WriteManifest(dir, nC, counts); err != nil {
		return nil, Stats{}, err
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, Stats{}, err
	}
	return st, c.Stats(), nil
}
