package dist

import (
	"context"
	"math"

	"kronlab/internal/core"
	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// Result is the outcome of a distributed generation: the product edges
// stored at each rank (owner-routed) plus traffic statistics.
type Result struct {
	NC      int64          // product vertex count n_A·n_B
	PerRank [][]graph.Edge // arcs stored by each rank
	Stats   Stats
}

// TotalStored returns the total number of arcs stored across ranks.
func (res *Result) TotalStored() int64 {
	var t int64
	for _, s := range res.PerRank {
		t += int64(len(s))
	}
	return t
}

// MaxRankStorage returns the largest per-rank arc count — the paper's
// per-processor storage term O(|E_A|/R + |E_B|) plus owned output.
func (res *Result) MaxRankStorage() int64 {
	var m int64
	for _, s := range res.PerRank {
		if int64(len(s)) > m {
			m = int64(len(s))
		}
	}
	return m
}

// Collect merges all per-rank stored arcs into a single Graph — the
// oracle check that the distributed run produced exactly C = A ⊗ B.
func (res *Result) Collect() (*graph.Graph, error) {
	var arcs []graph.Edge
	for _, s := range res.PerRank {
		arcs = append(arcs, s...)
	}
	return graph.New(res.NC, arcs)
}

// PartitionArcs splits arcs into parts contiguous blocks of near-equal
// size (the "evenly distributed across the R processors" of Sec. III).
// Parts beyond len(arcs) are empty.
func PartitionArcs(arcs []graph.Edge, parts int) [][]graph.Edge {
	out := make([][]graph.Edge, parts)
	n := int64(len(arcs))
	p := int64(parts)
	for i := int64(0); i < p; i++ {
		lo := i * n / p
		hi := (i + 1) * n / p
		out[i] = arcs[lo:hi]
	}
	return out
}

// generateChain runs the engine with an in-memory sink — the shared body
// of GenerateChain, Generate1D and Generate2D.
func generateChain(ch *core.Chain, r int, owner OwnerFunc, twoD bool) (*Result, error) {
	// A nil owner means OwnerBySource; bind the pre-specialized form so
	// the default routed hot loop pays a single indirect call per edge.
	var ownr Owner = sourceHashOwner{}
	if owner != nil {
		ownr = owner
	}
	plan, err := planForChain(ch, r, twoD)
	if err != nil {
		return nil, err
	}
	arcs, arcsErr := ch.NumArcs()
	if arcsErr != nil {
		// |E_C| overflows int64: an in-memory run cannot hold the result
		// anyway; refuse rather than generate garbage.
		return nil, arcsErr
	}
	sink := NewMemorySink(r)
	// The product arc count is exact ground truth before expansion; size
	// each rank's buffer so append growth never runs during generation.
	// For the default source-keyed owner the per-rank load itself is
	// ground truth: out-degrees factor across the whole chain
	// (deg_C(p) = Π deg_d(digit_d(p))), so summing the degree products of
	// each rank's owned product vertices gives exact buffer sizes in
	// O(|V_C|) — which the gate keeps a small fraction of the O(|E_C|)
	// expansion. With power-law factors the hash-partitioned loads are
	// skewed enough that the ideal-share hint under-sizes hot ranks and
	// growslice doubling dominates allocations.
	if limit, ok := core.CheckedMul(4, arcs); owner == nil && ok && plan.NC <= limit {
		sink.Hints = chainSourceHashLoads(ch, r)
	} else {
		sink.Hint = arcs/int64(r) + 1
	}
	st, err := Run(context.Background(), Config{Plan: plan, Owner: ownr, Sink: sink})
	if err != nil {
		return nil, err
	}
	return &Result{NC: plan.NC, PerRank: sink.PerRank, Stats: st}, nil
}

// chainSourceHashLoads returns the exact number of product arcs the
// default source-hash owner routes to each of r ranks: product vertex p
// has out-degree Π deg_d(digit_d(p)), and its whole arc set lands on the
// rank its source hashes to. O(|V_C|) time via a recursive sweep of the
// mixed-radix digit space.
func chainSourceHashLoads(ch *core.Chain, r int) []int64 {
	loads := make([]int64, r)
	owner := sourceHashOwner{}.Bind(r)
	factors := ch.Factors()
	ci := ch.Index()
	var rec func(d int, base, deg int64)
	rec = func(d int, base, deg int64) {
		g := factors[d]
		n := g.NumVertices()
		if d == len(factors)-1 {
			for k := int64(0); k < n; k++ {
				if dk := g.Degree(k); dk > 0 {
					loads[owner(base+k, 0)] += deg * dk
				}
			}
			return
		}
		stride := ci.Stride(d)
		for k := int64(0); k < n; k++ {
			if dk := g.Degree(k); dk > 0 {
				rec(d+1, base+k*stride, deg*dk)
			}
		}
	}
	rec(0, 0, 1)
	return loads
}

// generate is generateChain for a two-factor product.
func generate(a, b *graph.Graph, r int, owner OwnerFunc, twoD bool) (*Result, error) {
	ch, err := core.NewChain(a, b)
	if err != nil {
		return nil, err
	}
	return generateChain(ch, r, owner, twoD)
}

// sourceHashLoads is chainSourceHashLoads for a two-factor product.
func sourceHashLoads(a, b *graph.Graph, r int) []int64 {
	ch, err := core.NewChain(a, b)
	if err != nil {
		panic(err) // two validated factors cannot fail
	}
	return chainSourceHashLoads(ch, r)
}

// GenerateChain runs the distributed generator over a factor chain
// A₁⊗…⊗Aₖ: the head's arcs are the split dimension, each rank folds the
// replicated tail lazily through the chain kernel, and every generated
// edge is routed to owner(u, v, r) for storage. k = 2 is exactly
// Generate1D/2D.
func GenerateChain(ch *core.Chain, r int, owner OwnerFunc, twoD bool) (*Result, error) {
	return generateChain(ch, r, owner, twoD)
}

// Generate1D runs the paper's Sec. III generator on a simulated cluster
// of r ranks: B is replicated on every rank, the arcs of A are evenly
// distributed, rank ρ expands C_ρ = A_ρ ⊗ B, and every generated edge is
// routed to owner(u, v, r) for storage. Per-rank memory is
// O(|E_A|/R + |E_B| + stored), time O(|E_A|·|E_B|/R).
func Generate1D(a, b *graph.Graph, r int, owner OwnerFunc) (*Result, error) {
	ch, err := core.NewChain(a, b)
	if err != nil {
		return nil, err
	}
	return generateChain(ch, r, owner, false)
}

// Generate2D runs the Rem. 1 generator: both factors' arcs are
// partitioned (A into R½ parts, B into Q parts) and each rank expands its
// tile(s) A_i ⊗ B_j. Per-rank replicated storage drops from O(|E_B|) to
// O(|E_A|/R½ + |E_B|/Q), enabling weak scaling to O(|E_C|) processors.
func Generate2D(a, b *graph.Graph, r int, owner OwnerFunc) (*Result, error) {
	ch, err := core.NewChain(a, b)
	if err != nil {
		return nil, err
	}
	return generateChain(ch, r, owner, true)
}

// Grid2D is the processor grid of Rem. 1: R½ = ⌈√R⌉ columns of A-parts by
// Q = ⌈R/R½⌉ rows of B-parts. The paper's assignment
// C_ρ = A_{ρ%R½} ⊗ B_{⌊ρ/R½⌋} covers every (A-part, B-part) tile only when
// R = R½·Q exactly; for general R we assign the R½·Q tiles round-robin to
// ranks (tile t → rank t % R), so some ranks own two tiles — a correctness
// completion of the paper's sketch.
type Grid2D struct {
	RHalf, Q int
}

// NewGrid2D returns the 2D decomposition for r ranks.
func NewGrid2D(r int) Grid2D {
	rh := int(math.Ceil(math.Sqrt(float64(r))))
	q := (r + rh - 1) / rh
	return Grid2D{RHalf: rh, Q: q}
}

// Tiles returns the number of (A-part, B-part) tiles R½·Q.
func (g Grid2D) Tiles() int { return g.RHalf * g.Q }

// TileOf returns the (A-part, B-part) coordinates of tile t.
func (g Grid2D) TileOf(t int) (aPart, bPart int) { return t % g.RHalf, t / g.RHalf }

// CountOnly generates the product on r ranks without routing or storing
// edges — the pure expansion throughput used by the generation benchmarks
// (experiment E2). It returns the number of edges generated.
func CountOnly(a, b *graph.Graph, r int, twoD bool) (int64, error) {
	ch, err := core.NewChain(a, b)
	if err != nil {
		return 0, err
	}
	return CountOnlyChain(ch, r, twoD)
}

// CountOnlyChain is CountOnly over a factor chain — the chain-depth
// expansion throughput probe of the weak-scaling experiment (E3).
func CountOnlyChain(ch *core.Chain, r int, twoD bool) (int64, error) {
	plan, err := planForChain(ch, r, twoD)
	if err != nil {
		return 0, err
	}
	sink := &CountSink{}
	if _, err := Run(context.Background(), Config{Plan: plan, Sink: sink}); err != nil {
		return 0, err
	}
	return sink.Total(), nil
}

// EffectiveParallelism1D returns the number of ranks that receive any work
// under 1D partitioning: min(R, |arcs_A|) — the Rem. 1 scalability wall.
func EffectiveParallelism1D(a *graph.Graph, r int) int {
	if int64(r) > a.NumArcs() {
		return int(a.NumArcs())
	}
	return r
}

// EffectiveParallelism2D returns the number of ranks with work under the
// 2D decomposition: min(R, arcs_A·arcs_B tiles with both parts nonempty).
func EffectiveParallelism2D(a, b *graph.Graph, r int) int {
	grid := NewGrid2D(r)
	aBusy := grid.RHalf
	if int64(aBusy) > a.NumArcs() {
		aBusy = int(a.NumArcs())
	}
	bBusy := grid.Q
	if int64(bBusy) > b.NumArcs() {
		bBusy = int(b.NumArcs())
	}
	busy := aBusy * bBusy
	if busy > r {
		busy = r
	}
	return busy
}

// generateToStore runs the engine with a per-rank shard-writer sink. The
// owner map is forced to shard-per-rank routing (OwnerBySource, matching
// store.BySource) so shard i holds exactly rank i's owned edges.
func generateToStore(a, b *graph.Graph, r int, dir string, twoD bool) (*store.Store, Stats, error) {
	ch, err := core.NewChain(a, b)
	if err != nil {
		return nil, Stats{}, err
	}
	return GenerateChainToStore(ch, r, dir, twoD)
}

// GenerateChainToStore runs the chain generator with each rank streaming
// its owned edges to its own shard of an on-disk store — the full
// generate-route-store pipeline at any chain depth with O(batch) memory
// per rank regardless of |E_C|.
func GenerateChainToStore(ch *core.Chain, r int, dir string, twoD bool) (*store.Store, Stats, error) {
	return GenerateChainToStoreFrom(ch, r, dir, twoD, 0, -1)
}

// GenerateChainToStoreFrom is GenerateChainToStore over a contiguous
// window of the chain's deterministic stream: limit arcs (< 0 = through
// the end) starting at global arc offset — sharded dumps of a slice of a
// huge product, without generating the skipped prefix (Plan.Slice
// windows the tiles arithmetically). The store's manifest records only
// the window's edges; NC stays the full product's vertex count.
func GenerateChainToStoreFrom(ch *core.Chain, r int, dir string, twoD bool, offset, limit int64) (*store.Store, Stats, error) {
	plan, err := sliceForChain(ch, r, twoD, offset, limit)
	if err != nil {
		return nil, Stats{}, err
	}
	sink := NewStoreSink(dir, r)
	st, err := Run(context.Background(), Config{Plan: plan, Owner: OwnerBySource, Sink: sink})
	if err != nil {
		return nil, Stats{}, err
	}
	s, err := sink.Finalize(plan.NC)
	if err != nil {
		return nil, Stats{}, err
	}
	return s, st, nil
}

// Generate1DToStore runs the 1D generator with each rank streaming its
// owned edges to its own shard of an on-disk store — the full
// generate-route-store pipeline of Sec. III with O(batch) memory per rank
// regardless of |E_C|.
func Generate1DToStore(a, b *graph.Graph, r int, dir string) (*store.Store, Stats, error) {
	return generateToStore(a, b, r, dir, false)
}

// Generate2DToStore is Generate1DToStore under the Rem. 1 decomposition:
// tiled expansion with per-rank shard storage, combining 2D weak scaling
// with O(batch) generation memory.
func Generate2DToStore(a, b *graph.Graph, r int, dir string) (*store.Store, Stats, error) {
	return generateToStore(a, b, r, dir, true)
}
