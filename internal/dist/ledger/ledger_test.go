package ledger

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeLedger(t *testing.T, path string, recs []Record) {
	t.Helper()
	l, st, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if st.Identity != nil {
		t.Fatalf("fresh ledger has identity %+v", st.Identity)
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func sampleRun() []Record {
	return []Record{
		{Kind: KindIdentity, PlanHash: 0xfeedfacecafef00d, Digest: 42, Procs: 4, Ranks: 6},
		{Kind: KindGen, Gen: 1},
		{Kind: KindEpoch, Epoch: 0},
		{Kind: KindStored, Tile: 0, Rank: 1, Count: 10},
		{Kind: KindStored, Tile: 0, Rank: 2, Count: 7},
		{Kind: KindCommit, Tile: 0, On: true},
		{Kind: KindEpoch, Epoch: 1},
		{Kind: KindStored, Tile: 3, Rank: 1, Count: 5},
		// Absolute counts: the later record wins outright.
		{Kind: KindStored, Tile: 3, Rank: 1, Count: 9},
		{Kind: KindCommit, Tile: 3, On: true},
		{Kind: KindCommit, Tile: 3, On: false},
		{Kind: KindCommit, Tile: 5, On: true},
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ledger")
	writeLedger(t, path, sampleRun())

	st, err := Replay(path)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Identity == nil || st.Identity.PlanHash != 0xfeedfacecafef00d || st.Identity.Digest != 42 {
		t.Fatalf("identity not reconstructed: %+v", st.Identity)
	}
	if st.Gen != 1 || st.LastEpoch != 1 {
		t.Fatalf("gen/epoch = %d/%d, want 1/1", st.Gen, st.LastEpoch)
	}
	if got := st.Stored[0][1]; got != 10 {
		t.Fatalf("stored[0][1] = %d, want 10", got)
	}
	if got := st.Stored[3][1]; got != 9 {
		t.Fatalf("stored[3][1] = %d, want 9 (last absolute value wins)", got)
	}
	if got := st.CommittedTiles(); !reflect.DeepEqual(got, []int{0, 5}) {
		t.Fatalf("committed tiles = %v, want [0 5] (tile 3 was un-committed)", got)
	}
	if st.TornTail || st.Done {
		t.Fatalf("unexpected torn/done: %+v", st)
	}
}

func TestLedgerTornTailToleratedAndTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ledger")
	writeLedger(t, path, sampleRun())
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Chop the file mid-final-record at every possible torn length: the
	// replay must drop exactly the final record and keep the rest.
	full, _, err := ReplayBytes(whole)
	if err != nil {
		t.Fatalf("ReplayBytes(whole): %v", err)
	}
	start := lastRecordOffset(t, whole)
	for cut := start + 1; cut < len(whole); cut++ {
		st, valid, err := ReplayBytes(whole[:cut])
		if err != nil {
			t.Fatalf("cut=%d: torn tail rejected: %v", cut, err)
		}
		if !st.TornTail {
			t.Fatalf("cut=%d: torn tail not flagged", cut)
		}
		if valid != start {
			t.Fatalf("cut=%d: valid=%d, want %d", cut, valid, start)
		}
		// The final record was commit(5, on); without it tile 5 must not
		// be committed while everything earlier survives.
		if st.Committed[5] {
			t.Fatalf("cut=%d: torn record leaked into state", cut)
		}
		if !st.Committed[0] || st.Gen != full.Gen {
			t.Fatalf("cut=%d: earlier records lost: %+v", cut, st)
		}
	}

	// Open() must truncate the torn tail and resume appendable.
	cut := (start + len(whole)) / 2
	if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	l, st, err := Open(path)
	if err != nil {
		t.Fatalf("Open(torn): %v", err)
	}
	if !st.TornTail {
		t.Fatal("Open(torn): tail not flagged")
	}
	if err := l.Append(Record{Kind: KindDone}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Replay(path)
	if err != nil {
		t.Fatalf("Replay after torn reopen: %v", err)
	}
	if !st2.Done || st2.TornTail || st2.Committed[5] {
		t.Fatalf("post-truncate state wrong: %+v", st2)
	}
}

// lastRecordOffset returns the byte offset of the final record's frame.
func lastRecordOffset(t *testing.T, data []byte) int {
	t.Helper()
	off := len(fileMagic)
	last := off
	for off < len(data) {
		last = off
		ln := int(binary.LittleEndian.Uint32(data[off:]))
		off += frameHeader + ln
	}
	if off != len(data) {
		t.Fatalf("ledger not whole: off=%d len=%d", off, len(data))
	}
	return last
}

func TestLedgerCorruptionRefusedLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ledger")
	writeLedger(t, path, sampleRun())
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one body byte in a middle record: full-length, bad CRC.
	mid := len(fileMagic) + frameHeader + 3
	corrupt := append([]byte(nil), whole...)
	corrupt[mid] ^= 0x40
	if _, _, err := ReplayBytes(corrupt); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: err = %v, want ErrCorrupt", err)
	}
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(corrupt): err = %v, want ErrCorrupt", err)
	}

	// Bad magic is corruption, not emptiness.
	bad := append([]byte(nil), whole...)
	bad[0] = 'X'
	if _, _, err := ReplayBytes(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}

	// An absurd length field must not allocate or be trusted.
	huge := append([]byte(nil), whole[:len(fileMagic)]...)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], maxRecord+1)
	huge = append(huge, hdr[:]...)
	if _, _, err := ReplayBytes(huge); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: err = %v, want ErrCorrupt", err)
	}
}

func TestLedgerRotateCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ledger")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRun() {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Pile on redundant stored records so compaction has something to drop.
	for i := 0; i < 100; i++ {
		if err := l.Append(Record{Kind: KindStored, Tile: 0, Rank: 1, Count: int64(10 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	before, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := l.Size()

	if err := l.Rotate(before); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if l.Size() >= sizeBefore {
		t.Fatalf("rotation did not shrink: %d -> %d", sizeBefore, l.Size())
	}
	// The rotated ledger must replay to the same state and stay appendable.
	after, err := Replay(path)
	if err != nil {
		t.Fatalf("Replay(rotated): %v", err)
	}
	if !reflect.DeepEqual(after.Stored, before.Stored) ||
		!reflect.DeepEqual(after.CommittedTiles(), before.CommittedTiles()) ||
		after.Gen != before.Gen || after.LastEpoch != before.LastEpoch {
		t.Fatalf("rotation changed state:\nbefore %+v\nafter  %+v", before, after)
	}
	if err := l.Append(Record{Kind: KindDone, Err: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done || final.DoneErr != "x" {
		t.Fatalf("append after rotate lost: %+v", final)
	}
	// No rotate temp files may linger.
	matches, _ := filepath.Glob(filepath.Join(filepath.Dir(path), "*.rotate-*"))
	if len(matches) != 0 {
		t.Fatalf("leftover rotation temp files: %v", matches)
	}
}

func TestLedgerMissingFileIsEmpty(t *testing.T) {
	st, err := Replay(filepath.Join(t.TempDir(), "absent.ledger"))
	if err != nil {
		t.Fatalf("Replay(missing): %v", err)
	}
	if st.Identity != nil || st.Gen != 0 || st.LastEpoch != -1 || len(st.Stored) != 0 {
		t.Fatalf("missing file not empty: %+v", st)
	}
}

func TestLedgerUnknownKindSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ledger")
	writeLedger(t, path, []Record{
		{Kind: KindGen, Gen: 3},
		{Kind: "future-kind", Tile: 9},
		{Kind: KindCommit, Tile: 1, On: true},
	})
	st, err := Replay(path)
	if err != nil {
		t.Fatalf("unknown kind broke replay: %v", err)
	}
	if st.Gen != 3 || !st.Committed[1] {
		t.Fatalf("records around unknown kind lost: %+v", st)
	}
}

func FuzzLedgerReplay(f *testing.F) {
	// Seed with a real ledger image plus mutations of it.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.ledger")
	l, _, err := Open(path)
	if err != nil {
		f.Fatal(err)
	}
	for _, rec := range sampleRun() {
		if err := l.Append(rec); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(whole)
	f.Add(whole[:len(whole)/2])
	f.Add([]byte{})
	f.Add([]byte("KRONLDG1"))
	f.Add([]byte("not a ledger"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Never panics; valid-prefix length is always in range and on the
		// error path points at the offending record.
		st, valid, err := ReplayBytes(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid=%d out of range [0,%d]", valid, len(data))
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corruption error from raw bytes: %v", err)
			}
			return
		}
		// A clean replay's valid prefix must itself replay cleanly to the
		// same fold (minus the torn-tail flag, which the prefix lacks).
		st2, valid2, err2 := ReplayBytes(data[:valid])
		if err2 != nil || valid2 != valid {
			t.Fatalf("valid prefix not idempotent: valid=%d err=%v", valid2, err2)
		}
		if !reflect.DeepEqual(st.Stored, st2.Stored) || !reflect.DeepEqual(st.Committed, st2.Committed) {
			t.Fatalf("prefix replay diverged")
		}
	})
}
