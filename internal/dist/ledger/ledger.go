// Package ledger is the head's durable run log: an append-only,
// per-record-checksummed file that records everything cluster-mode
// supervision must not lose with the supervising process — the run's
// identity (plan hash and config digest), head generations, epoch
// transitions, per-(tile, rank) stored prefixes and tile commitments. A
// respawned head replays the ledger, validates that it is resuming the
// same run, and reconstructs the checkpoint table instead of discarding
// every committed tile with the old process's memory.
//
// Durability posture:
//
//   - Records are framed [len u32][crc32c u32][body], little-endian,
//     with the CRC (Castagnoli) over the body. Append buffers; Commit
//     flushes and fsyncs — the head commits at every state change whose
//     loss would be unrecoverable (generation open, epoch start,
//     harvest, conclusion).
//   - Replay tolerates a torn tail: a final record whose bytes end
//     early (the classic crash-mid-write artifact) is dropped and the
//     file is truncated back to the last whole record on reopen. A
//     record whose bytes are all present but whose checksum does not
//     match is NOT tolerated — that is corruption, and replay refuses
//     it loudly rather than resuming from a silently wrong table.
//   - Rotation is atomic: a compacted snapshot is written to a temp
//     file, fsynced, and renamed over the live path, so the ledger
//     never grows without bound and a crash mid-rotation leaves either
//     the old file or the new one, never a hybrid.
//
// Counts in stored records are absolute, not deltas: replay keeps the
// last value per (tile, rank), which makes rewriting a prefix after
// compaction or a re-harvest idempotent.
package ledger

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Record kinds.
const (
	KindIdentity = "identity" // run identity: plan hash, config digest, layout
	KindGen      = "gen"      // a head generation opened the ledger
	KindEpoch    = "epoch"    // an attempt epoch began
	KindStored   = "stored"   // absolute stored prefix for one (tile, rank)
	KindCommit   = "commit"   // a tile's commitment flipped (On = new state)
	KindDone     = "done"     // the run concluded (Err empty on success)
)

// Record is one ledger entry. Fields are kind-discriminated; unused
// fields stay at their zero value and are omitted from the encoding.
type Record struct {
	Kind string `json:"k"`

	// identity
	PlanHash uint64 `json:"ph,omitempty"`
	Digest   uint64 `json:"cd,omitempty"`
	Procs    int    `json:"np,omitempty"`
	Ranks    int    `json:"nr,omitempty"`

	Gen   int64 `json:"g,omitempty"` // gen
	Epoch int64 `json:"e,omitempty"` // epoch

	// stored / commit
	Tile  int   `json:"t,omitempty"`
	Rank  int   `json:"r,omitempty"`
	Count int64 `json:"n,omitempty"`
	On    bool  `json:"on,omitempty"`

	Err string `json:"err,omitempty"` // done
}

// State is the fold of a ledger's records: everything a respawned head
// needs to resume supervision.
type State struct {
	Identity  *Record               // nil until an identity record exists
	Gen       int64                 // highest head generation recorded
	LastEpoch int64                 // highest epoch recorded; -1 before any
	Stored    map[int]map[int]int64 // tile → rank → absolute stored prefix
	Committed map[int]bool          // tile → committed
	Done      bool
	DoneErr   string
	TornTail  bool // a torn final record was dropped during replay
}

func emptyState() State {
	return State{
		LastEpoch: -1,
		Stored:    make(map[int]map[int]int64),
		Committed: make(map[int]bool),
	}
}

// CommittedTiles returns the sorted IDs of committed tiles.
func (st State) CommittedTiles() []int {
	ids := make([]int, 0, len(st.Committed))
	for id, on := range st.Committed {
		if on {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

func (st *State) fold(rec Record) {
	switch rec.Kind {
	case KindIdentity:
		r := rec
		st.Identity = &r
	case KindGen:
		if rec.Gen > st.Gen {
			st.Gen = rec.Gen
		}
	case KindEpoch:
		if rec.Epoch > st.LastEpoch {
			st.LastEpoch = rec.Epoch
		}
	case KindStored:
		m := st.Stored[rec.Tile]
		if m == nil {
			m = make(map[int]int64)
			st.Stored[rec.Tile] = m
		}
		m[rec.Rank] = rec.Count
	case KindCommit:
		st.Committed[rec.Tile] = rec.On
	case KindDone:
		st.Done = true
		st.DoneErr = rec.Err
	}
	// Unknown kinds are skipped: a newer writer's record types must not
	// brick an older reader's replay (the checksum already vouched for
	// the bytes).
}

// ErrCorrupt reports a record whose bytes are fully present but fail
// their checksum (or decode) — unlike a torn tail, this is not a crash
// artifact and replay refuses to continue past it.
var ErrCorrupt = errors.New("ledger: corrupt record")

// ErrIdentity reports an identity mismatch on resume: the ledger at the
// path belongs to a different run.
var ErrIdentity = errors.New("ledger: run identity mismatch")

// fileMagic opens every ledger file; a file that starts with anything
// else is not a ledger and is refused rather than misparsed.
var fileMagic = []byte("KRONLDG1")

// maxRecord bounds one record's body so a corrupt length field cannot
// make replay allocate gigabytes.
const maxRecord = 1 << 20

// castagnoli is the CRC32C table (the checksum SSE4.2 accelerates).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const frameHeader = 8 // len u32 + crc u32

// ReplayBytes folds a ledger image into a State. It returns the number
// of bytes that form whole, valid records (including the file magic):
// a torn final record is excluded from that count and flagged in
// State.TornTail; a checksum-corrupt record aborts with ErrCorrupt. It
// never panics on arbitrary input — the fuzz target holds it to that.
func ReplayBytes(data []byte) (State, int, error) {
	st := emptyState()
	if len(data) == 0 {
		return st, 0, nil
	}
	if len(data) < len(fileMagic) {
		// A torn write of the magic itself: an empty ledger.
		st.TornTail = true
		return st, 0, nil
	}
	if string(data[:len(fileMagic)]) != string(fileMagic) {
		return st, 0, fmt.Errorf("%w: bad file magic", ErrCorrupt)
	}
	off := len(fileMagic)
	for off < len(data) {
		rem := len(data) - off
		if rem < frameHeader {
			st.TornTail = true
			return st, off, nil
		}
		ln := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if ln > maxRecord {
			return st, off, fmt.Errorf("%w: record length %d exceeds %d", ErrCorrupt, ln, maxRecord)
		}
		if rem-frameHeader < int(ln) {
			// The declared body extends past EOF: a torn final record.
			st.TornTail = true
			return st, off, nil
		}
		body := data[off+frameHeader : off+frameHeader+int(ln)]
		if crc32.Checksum(body, castagnoli) != crc {
			return st, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		var rec Record
		if err := json.Unmarshal(body, &rec); err != nil {
			return st, off, fmt.Errorf("%w: undecodable record at offset %d: %v", ErrCorrupt, off, err)
		}
		st.fold(rec)
		off += frameHeader + int(ln)
	}
	return st, off, nil
}

// Replay reads and folds the ledger at path. A missing file is an empty
// state, not an error — the caller distinguishes "fresh run" from
// "resume" by State.Identity.
func Replay(path string) (State, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return emptyState(), nil
	}
	if err != nil {
		return emptyState(), err
	}
	st, _, err := ReplayBytes(data)
	return st, err
}

// Ledger is the append side: one writer (the head), buffered appends,
// explicit Commit (flush + fsync) at state-change boundaries.
type Ledger struct {
	path string
	f    *os.File
	size int64
	buf  []byte // pending appended frames, flushed by Commit
}

// Open replays the ledger at path (creating it if absent), truncates a
// torn tail back to the last whole record, and returns the ledger
// positioned for appending plus the replayed state. Corruption and I/O
// errors are returned loudly; the caller decides whether a non-empty
// state is the run it expects (see State.Identity and ErrIdentity).
func Open(path string) (*Ledger, State, error) {
	data, err := os.ReadFile(path)
	fresh := errors.Is(err, os.ErrNotExist)
	if err != nil && !fresh {
		return nil, emptyState(), err
	}
	st := emptyState()
	valid := 0
	if !fresh {
		st, valid, err = ReplayBytes(data)
		if err != nil {
			return nil, st, err
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, st, err
	}
	l := &Ledger{path: path, f: f, size: int64(valid)}
	if fresh || valid == 0 {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, st, err
		}
		if _, err := f.WriteAt(fileMagic, 0); err != nil {
			f.Close()
			return nil, st, err
		}
		l.size = int64(len(fileMagic))
	} else if int64(len(data)) != int64(valid) {
		// Drop the torn tail so the next append starts at a record
		// boundary instead of extending garbage.
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, st, err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, st, err
	}
	return l, st, nil
}

// appendFrame encodes one record onto the pending buffer.
func appendFrame(dst []byte, rec Record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return dst, err
	}
	if len(body) > maxRecord {
		return dst, fmt.Errorf("ledger: record body %d bytes exceeds %d", len(body), maxRecord)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, body...), nil
}

// Append stages one record. It is not durable until Commit returns.
func (l *Ledger) Append(rec Record) error {
	buf, err := appendFrame(l.buf, rec)
	if err != nil {
		return err
	}
	l.buf = buf
	return nil
}

// Commit writes every staged record at the end of the file and fsyncs.
// A commit that fails leaves the staged records pending, so a retry (or
// Close) gets another chance to land them.
func (l *Ledger) Commit() error {
	if len(l.buf) > 0 {
		n, err := l.f.WriteAt(l.buf, l.size)
		if err != nil {
			// A short write leaves a torn tail — exactly what replay
			// tolerates — but this process must not keep appending past it.
			l.size += int64(n)
			l.buf = nil
			return err
		}
		l.size += int64(n)
		l.buf = l.buf[:0]
	}
	return l.f.Sync()
}

// Size returns the durable file size plus staged bytes — the rotation
// trigger's input.
func (l *Ledger) Size() int64 { return l.size + int64(len(l.buf)) }

// Close commits pending records and closes the file.
func (l *Ledger) Close() error {
	cerr := l.Commit()
	if err := l.f.Close(); err != nil && cerr == nil {
		cerr = err
	}
	return cerr
}

// Snapshot flattens a state into the minimal record sequence that
// replays back to it — the compaction rotation writes.
func Snapshot(st State) []Record {
	var recs []Record
	if st.Identity != nil {
		id := *st.Identity
		recs = append(recs, id)
	}
	if st.Gen > 0 {
		recs = append(recs, Record{Kind: KindGen, Gen: st.Gen})
	}
	if st.LastEpoch >= 0 {
		recs = append(recs, Record{Kind: KindEpoch, Epoch: st.LastEpoch})
	}
	tiles := make([]int, 0, len(st.Stored))
	for id := range st.Stored {
		tiles = append(tiles, id)
	}
	sort.Ints(tiles)
	for _, id := range tiles {
		ranks := make([]int, 0, len(st.Stored[id]))
		for rk := range st.Stored[id] {
			ranks = append(ranks, rk)
		}
		sort.Ints(ranks)
		for _, rk := range ranks {
			if n := st.Stored[id][rk]; n != 0 {
				recs = append(recs, Record{Kind: KindStored, Tile: id, Rank: rk, Count: n})
			}
		}
	}
	for _, id := range st.CommittedTiles() {
		recs = append(recs, Record{Kind: KindCommit, Tile: id, On: true})
	}
	return recs
}

// Rotate atomically replaces the ledger with a compacted snapshot of
// st: write to a temp file in the same directory, fsync, rename over
// the live path, fsync the directory. A crash at any point leaves
// either the old complete ledger or the new one. Pending (uncommitted)
// appends are discarded — rotate from the state that includes them.
func (l *Ledger) Rotate(st State) error {
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(l.path)+".rotate-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	buf := append([]byte(nil), fileMagic...)
	for _, rec := range Snapshot(st) {
		if buf, err = appendFrame(buf, rec); err != nil {
			return fail(err)
		}
	}
	if _, err := tmp.Write(buf); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, l.path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	old.Close()
	l.f = f
	l.size = int64(len(buf))
	l.buf = l.buf[:0]
	return nil
}
