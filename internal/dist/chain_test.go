package dist

// Chain-engine equivalence tests: the distributed generator at k>2 —
// in-proc 1D/2D, routed and owned, streamed, stored, TCP cluster, and
// crash-then-recover across real process boundaries — must reproduce the
// serial chain product (core.KronPower / Chain.Materialize)
// edge-for-edge. Two-factor parity stays covered by the existing suites;
// these pin the generalized code path.

import (
	"context"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/dist/transport"
	"kronlab/internal/dist/transport/tcp"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// powerChain3 is the fixed k=3 power chain of the equivalence suite.
func powerChain3(t *testing.T) (*core.Chain, *graph.Graph) {
	t.Helper()
	a := gen.PrefAttach(6, 2, 51)
	ch, err := core.PowerChain(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.KronPower(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ch, want
}

// heteroChain3 is a heterogeneous three-factor chain plus its serial
// reference.
func heteroChain3(t *testing.T) (*core.Chain, *graph.Graph) {
	t.Helper()
	ch, err := core.NewChain(gen.PrefAttach(6, 2, 52), gen.ER(5, 0.5, 53), gen.Ring(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ch.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return ch, want
}

// TestGenerateChainMatchesSerial sweeps decomposition × routing × chain
// shape: every distributed k=3 product must equal the serial reference.
func TestGenerateChainMatchesSerial(t *testing.T) {
	for _, shape := range []struct {
		name  string
		build func(*testing.T) (*core.Chain, *graph.Graph)
	}{
		{"power3", powerChain3},
		{"hetero3", heteroChain3},
	} {
		ch, want := shape.build(t)
		for _, tc := range []struct {
			name  string
			twoD  bool
			owner OwnerFunc
		}{
			{"1d-routed", false, nil},
			{"2d-routed", true, nil},
			{"1d-owned", false, OwnerBySource},
			{"2d-owned", true, OwnerBySource},
		} {
			t.Run(shape.name+"/"+tc.name, func(t *testing.T) {
				res, err := GenerateChain(ch, 5, tc.owner, tc.twoD)
				if err != nil {
					t.Fatal(err)
				}
				got, err := res.Collect()
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatal("distributed chain product differs from serial reference")
				}
			})
		}
	}
}

// TestStreamChainMatchesSerial: the bounded-memory stream path carries
// exactly the chain's arc multiset.
func TestStreamChainMatchesSerial(t *testing.T) {
	ch, want := heteroChain3(t)
	got := map[graph.Edge]int{}
	var mu sync.Mutex
	_, err := StreamChain(context.Background(), ch, 4, true, 7,
		Recovery{}, func(batch []graph.Edge) error {
			mu.Lock()
			for _, e := range batch {
				got[e]++
			}
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	want.Arcs(func(u, v int64) bool {
		if got[graph.Edge{U: u, V: v}] != 1 {
			t.Fatalf("arc (%d,%d) streamed %d times", u, v, got[graph.Edge{U: u, V: v}])
		}
		total++
		return true
	})
	if int64(len(got)) != total {
		t.Fatalf("stream carried %d distinct arcs, want %d", len(got), total)
	}
}

// TestGenerateChainToStore: the store path at k=3 produces the serial
// product on disk, one shard per rank.
func TestGenerateChainToStore(t *testing.T) {
	ch, want := powerChain3(t)
	dir := t.TempDir()
	st, _, err := GenerateChainToStore(ch, 4, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalEdges() != want.NumArcs() {
		t.Fatalf("stored %d arcs, want %d", st.TotalEdges(), want.NumArcs())
	}
	got, err := st.LoadGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("chain store stream differs from serial reference")
	}
}

// TestChainPlanHashSensitivity: the handshake fingerprint must separate
// chain depths and tail shapes — a k=2 plan of A⊗A and the k=3 plan of
// A⊗A⊗A must not collide, nor must reordered heterogeneous chains.
func TestChainPlanHashSensitivity(t *testing.T) {
	a := gen.PrefAttach(6, 2, 51)
	ch2, err := core.PowerChain(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	ch3, err := core.PowerChain(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanChain1D(ch2, 4)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := PlanChain1D(ch3, 4)
	if err != nil {
		t.Fatal(err)
	}
	p3b, err := PlanChain1D(ch3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if PlanHash(p3) != PlanHash(p3b) {
		t.Fatal("identical chain plans hash differently")
	}
	if PlanHash(p2) == PlanHash(p3) {
		t.Fatal("k=2 and k=3 plans collide")
	}
	b, c := gen.ER(5, 0.5, 53), gen.Ring(4)
	abc, err := core.NewChain(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	acb, err := core.NewChain(a, c, b)
	if err != nil {
		t.Fatal(err)
	}
	pABC, err := PlanChain1D(abc, 4)
	if err != nil {
		t.Fatal(err)
	}
	pACB, err := PlanChain1D(acb, 4)
	if err != nil {
		t.Fatal(err)
	}
	if PlanHash(pABC) == PlanHash(pACB) {
		t.Fatal("reordered chain tails collide")
	}
}

// TestChainClusterParity folds a 4-process TCP cluster into this test
// process and diffs the shared k=3 store against core.KronPower.
func TestChainClusterParity(t *testing.T) {
	ch, want := powerChain3(t)
	for _, tc := range []struct {
		name string
		r    int
		twoD bool
	}{
		{"1d/r5-uneven", 5, false},
		{"2d/r6", 6, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const nprocs = 4
			plan, err := planForChain(ch, tc.r, tc.twoD)
			if err != nil {
				t.Fatal(err)
			}
			hash := PlanHash(plan)
			nodes := make([]*tcp.Node, nprocs)
			addrs := make([]string, nprocs)
			for i := range nodes {
				n, err := tcp.NewNode("127.0.0.1:0", i, hash)
				if err != nil {
					t.Fatalf("node %d: %v", i, err)
				}
				defer n.Close()
				nodes[i] = n
				addrs[i] = n.Addr()
			}
			procs := transport.SplitRanks(addrs, tc.r)
			dir := t.TempDir()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			var wg sync.WaitGroup
			stores := make([]*store.Store, nprocs)
			errs := make([]error, nprocs)
			for p := 0; p < nprocs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					cc := ClusterConfig{Procs: procs, Self: p, Node: nodes[p]}
					stores[p], _, errs[p] = GenerateChainClusterToStore(ctx, ch, dir, tc.twoD, cc, Recovery{})
				}(p)
			}
			wg.Wait()
			for p, err := range errs {
				if err != nil {
					t.Errorf("proc %d: %v", p, err)
				}
			}
			if t.Failed() {
				t.FailNow()
			}
			st := stores[0]
			if st == nil {
				t.Fatal("head returned no store")
			}
			got, err := st.LoadGraph()
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatal("chain cluster product differs from serial reference")
			}
		})
	}
}

// envChainHelper selects the chain worker body on re-exec; the remaining
// cluster env keys are shared with the two-factor kill suite.
const envChainHelper = "KRONLAB_CHAIN_CLUSTER_HELPER"

// chainKillFactor seeds the crash-recovery chain: every process derives
// the identical k=3 plan (and plan hash) with no factor shipping.
func chainKillFactor() *graph.Graph { return gen.PrefAttach(7, 2, 61) }

// chainKillConfig is the shared shape of the chain crash-recovery
// cluster, derived independently by driver and helpers.
func chainKillConfig(dir string, r int) (Config, Plan, error) {
	ch, err := core.PowerChain(chainKillFactor(), 3)
	if err != nil {
		return Config{}, Plan{}, err
	}
	plan, err := PlanChain1D(ch, r)
	if err != nil {
		return Config{}, Plan{}, err
	}
	return Config{
		Plan:      plan,
		Owner:     OwnerBySource,
		Sink:      NewStoreSink(dir, r),
		BatchSize: 32,
		Recovery:  Recovery{MaxRetries: 3, Backoff: 10 * time.Millisecond},
	}, plan, nil
}

// TestChainClusterHelperProcess is not a test: it is the worker body of
// TestChainClusterKillRecovery, entered only on re-exec.
func TestChainClusterHelperProcess(t *testing.T) {
	if os.Getenv(envChainHelper) != "1" {
		t.Skip("helper body for TestChainClusterKillRecovery")
	}
	addrs := strings.Split(os.Getenv(envClusterAddrs), ",")
	self, err := strconv.Atoi(os.Getenv(envClusterSelf))
	if err != nil {
		t.Fatalf("bad self index: %v", err)
	}
	kill, _ := strconv.ParseInt(os.Getenv(envClusterKill), 10, 64)
	cfg, plan, err := chainKillConfig(os.Getenv(envClusterDir), len(addrs))
	if err != nil {
		t.Fatal(err)
	}
	if kill > 0 {
		cfg.Faults = &FaultPlan{TCP: transport.TCPFaults{KillAfterFrames: kill}}
	}
	node, err := tcp.NewNode(addrs[self], self, PlanHash(plan))
	if err != nil {
		t.Fatalf("worker %d node: %v", self, err)
	}
	defer node.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	cc := ClusterConfig{Procs: transport.SplitRanks(addrs, plan.R), Self: self, Node: node}
	if _, err := RunCluster(ctx, cc, cfg); err != nil {
		t.Fatalf("worker %d: %v", self, err)
	}
}

// TestChainClusterKillRecovery is the crash-then-recover contract at
// k=3 across real process boundaries: one worker SIGKILLs itself
// mid-exchange, is respawned clean, and the recovered store must hold
// exactly the serial A^{⊗3} — the checkpoint/replay identities survive
// the chain generalization.
func TestChainClusterKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	const nprocs = 4
	const victim = 1
	addrs := reservePorts(t, nprocs)
	dir := t.TempDir()
	cfg, plan, err := chainKillConfig(dir, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.KronPower(chainKillFactor(), 3)
	if err != nil {
		t.Fatal(err)
	}
	node, err := tcp.NewNode(addrs[0], 0, PlanHash(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spawn := func(self int, kill int64) *exec.Cmd {
		cmd := exec.Command(exe, "-test.run", "^TestChainClusterHelperProcess$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			envChainHelper+"=1",
			envClusterAddrs+"="+strings.Join(addrs, ","),
			envClusterSelf+"="+strconv.Itoa(self),
			envClusterDir+"="+dir,
			envClusterKill+"="+strconv.FormatInt(kill, 10),
		)
		cmd.Stderr = os.Stderr
		return cmd
	}

	workers := make(map[int]*exec.Cmd)
	for p := 1; p < nprocs; p++ {
		kill := int64(0)
		if p == victim {
			kill = 5
		}
		workers[p] = spawn(p, kill)
		if err := workers[p].Start(); err != nil {
			t.Fatal(err)
		}
	}
	victimDied := make(chan error, 1)
	respawnDone := make(chan error, 1)
	go func() {
		victimDied <- workers[victim].Wait()
		re := spawn(victim, 0)
		if err := re.Start(); err != nil {
			respawnDone <- err
			return
		}
		respawnDone <- re.Wait()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	stats, err := RunCluster(ctx, ClusterConfig{Procs: transport.SplitRanks(addrs, nprocs), Self: 0, Node: node}, cfg)
	if err != nil {
		t.Fatalf("head: %v", err)
	}

	if err := <-victimDied; err == nil {
		t.Fatal("victim worker exited cleanly; the kill fault never fired")
	}
	if err := <-respawnDone; err != nil {
		t.Fatalf("respawned worker: %v", err)
	}
	for p := 1; p < nprocs; p++ {
		if p == victim {
			continue
		}
		if err := workers[p].Wait(); err != nil {
			t.Fatalf("worker %d: %v", p, err)
		}
	}

	if stats.RecoveredRuns != 1 {
		t.Fatalf("RecoveredRuns = %d, want 1", stats.RecoveredRuns)
	}
	st, err := store.Recover(dir, plan.NC)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("recovered chain cluster product differs from serial A^{⊗3}")
	}
}
