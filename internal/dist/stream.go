package dist

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// DefaultStreamBatch is the batch size Stream uses when the caller passes
// batch ≤ 0: large enough to amortize channel traffic, small enough to
// keep cancellation latency and per-rank buffering low.
const DefaultStreamBatch = 1024

// Stream runs the Sec. III generator (1D partitioning, or Rem. 1's 2D
// grid with twoD) on r concurrent expander goroutines and delivers every
// generated product arc of C = A ⊗ B to emit in batches. It is the
// serving-side counterpart of Generate1D/Generate2D: instead of routing
// edges to per-rank storage, all ranks feed one consumer — kronserve's
// HTTP response writer — so memory stays O(r·batch) no matter how large
// |E_C| is.
//
// emit is called from a single goroutine (Stream's caller), in unspecified
// edge order; the batch slice is reused and must not be retained. Stream
// stops early when ctx is cancelled or emit returns an error; either way
// the expander goroutines are torn down before Stream returns. Stats
// counters follow the Generate* conventions, with every delivered edge
// accounted as routed traffic to the consumer.
func Stream(ctx context.Context, a, b *graph.Graph, r int, twoD bool, batch int, emit func([]graph.Edge) error) (Stats, error) {
	var stats Stats
	if r < 1 {
		return stats, fmt.Errorf("dist: stream needs ≥ 1 rank, got %d", r)
	}
	if batch <= 0 {
		batch = DefaultStreamBatch
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Work units mirror the Generate* partitionings: 1D gives rank ρ the
	// tile (A_ρ, B); 2D gives it the round-robin tiles of the R½×Q grid.
	type tile struct {
		aArcs []graph.Edge
		b     *graph.Graph
	}
	units := make([][]tile, r)
	if !twoD {
		parts := PartitionArcs(a.ArcList(), r)
		for rk := 0; rk < r; rk++ {
			units[rk] = []tile{{parts[rk], b}}
		}
	} else {
		grid := NewGrid2D(r)
		aParts := PartitionArcs(a.ArcList(), grid.RHalf)
		bParts := PartitionArcs(b.ArcList(), grid.Q)
		bGraphs := make([]*graph.Graph, grid.Q)
		for j := range bGraphs {
			bg, err := graph.New(b.NumVertices(), bParts[j])
			if err != nil {
				return stats, fmt.Errorf("dist: building B part %d: %w", j, err)
			}
			bGraphs[j] = bg
		}
		for t := 0; t < grid.Tiles(); t++ {
			ai, bj := grid.TileOf(t)
			rk := t % r
			units[rk] = append(units[rk], tile{aParts[ai], bGraphs[bj]})
		}
	}

	ch := make(chan []graph.Edge, 2*r)
	var wg sync.WaitGroup
	for rk := 0; rk < r; rk++ {
		wg.Add(1)
		go func(work []tile) {
			defer wg.Done()
			buf := make([]graph.Edge, 0, batch)
			flush := func() bool {
				if len(buf) == 0 {
					return true
				}
				select {
				case ch <- buf:
					atomic.AddInt64(&stats.Messages, 1)
					atomic.AddInt64(&stats.EdgesRouted, int64(len(buf)))
					atomic.AddInt64(&stats.BytesSent, int64(len(buf))*edgeWireBytes)
					buf = make([]graph.Edge, 0, batch)
					return true
				case <-ctx.Done():
					return false
				}
			}
			for _, u := range work {
				stop := false
				core.StreamProductArcs(u.aArcs, u.b, func(x, y int64) bool {
					atomic.AddInt64(&stats.EdgesGenerated, 1)
					buf = append(buf, graph.Edge{U: x, V: y})
					if len(buf) == batch && !flush() {
						stop = true
						return false
					}
					return true
				})
				if stop {
					return
				}
			}
			flush()
		}(units[rk])
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	var emitErr error
	for batch := range ch {
		if emitErr != nil || ctx.Err() != nil {
			continue // drain so expanders can exit
		}
		if err := emit(batch); err != nil {
			emitErr = err
			cancel()
		}
	}
	snapshot := Stats{
		EdgesGenerated: atomic.LoadInt64(&stats.EdgesGenerated),
		EdgesRouted:    atomic.LoadInt64(&stats.EdgesRouted),
		BytesSent:      atomic.LoadInt64(&stats.BytesSent),
		Messages:       atomic.LoadInt64(&stats.Messages),
	}
	if emitErr != nil {
		return snapshot, emitErr
	}
	return snapshot, context.Cause(ctx)
}
