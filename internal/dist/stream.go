package dist

import (
	"context"
	"fmt"
	"sync/atomic"

	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// DefaultStreamBatch is the batch size Stream uses when the caller passes
// batch ≤ 0: large enough to amortize channel traffic, small enough to
// keep cancellation latency and per-rank buffering low.
const DefaultStreamBatch = 1024

// Stream runs the Sec. III generator (1D partitioning, or Rem. 1's 2D
// grid with twoD) on r concurrent expander ranks and delivers every
// generated product arc of C = A ⊗ B to emit in batches. It is the
// engine run with the single-consumer streaming sink: instead of routing
// edges to per-rank storage, all ranks feed one consumer — kronserve's
// HTTP response writer — so memory stays O(r·batch) no matter how large
// |E_C| is.
//
// emit is called from a single goroutine (Stream's caller), in unspecified
// edge order; the batch slice is recycled after emit returns and must not
// be retained. Stream stops early when ctx is cancelled or emit returns an
// error; either way the expander ranks are torn down before Stream
// returns — every failure mode completes or errors, never hangs (see
// DESIGN.md §3a, "Failure semantics"). Stats counters follow the
// Generate* conventions, with every delivered edge accounted as routed
// traffic to the consumer.
//
// rec arms the run supervisor (see Recovery); the zero value streams
// unsupervised. Because the stream sink holds undelivered edges in the
// per-rank batch buffer across attempts and the fenced sinks suppress
// replayed prefixes, a recovered stream delivers every edge exactly once.
func Stream(ctx context.Context, a, b *graph.Graph, r int, twoD bool, batch int, rec Recovery, emit func([]graph.Edge) error) (Stats, error) {
	ch, err := core.NewChain(a, b)
	if err != nil {
		return Stats{}, err
	}
	return StreamChain(ctx, ch, r, twoD, batch, rec, emit)
}

// StreamChain is Stream over a factor chain A₁⊗…⊗Aₖ — the /gen serving
// path at any chain depth, with the same exactly-once recovery
// semantics.
func StreamChain(ctx context.Context, ch *core.Chain, r int, twoD bool, batch int, rec Recovery, emit func([]graph.Edge) error) (Stats, error) {
	if r < 1 {
		return Stats{}, fmt.Errorf("dist: stream needs ≥ 1 rank, got %d", r)
	}
	if batch <= 0 {
		batch = DefaultStreamBatch
	}
	plan, err := planForChain(ch, r, twoD)
	if err != nil {
		return Stats{}, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sink := newStreamSink(ctx, batch, 2*r)
	var st Stats
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		st, runErr = Run(ctx, Config{Plan: plan, Sink: sink, Recovery: rec, BatchSize: batch})
		close(sink.ch)
	}()

	var emitErr error
	for b := range sink.ch {
		if emitErr != nil || ctx.Err() != nil {
			sink.recycle(b)
			continue // drain so expander ranks can exit
		}
		if err := emit(b); err != nil {
			emitErr = err
			cancel()
			continue
		}
		sink.recycle(b)
	}
	<-done

	// The engine's transport counters are idle here (no Owner routing);
	// delivery to the consumer is the stream's communication.
	st.Messages = atomic.LoadInt64(&sink.messages)
	st.EdgesRouted = atomic.LoadInt64(&sink.routed)
	st.BytesSent = atomic.LoadInt64(&sink.bytes)
	switch {
	case emitErr != nil:
		return st, emitErr
	case context.Cause(ctx) != nil:
		return st, context.Cause(ctx)
	default:
		return st, runErr
	}
}
