package dist

import (
	"context"
	"fmt"
	"sync/atomic"

	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// DefaultStreamBatch is the batch size Stream uses when the caller passes
// batch ≤ 0: large enough to amortize channel traffic, small enough to
// keep cancellation latency and per-rank buffering low.
const DefaultStreamBatch = 1024

// Stream runs the Sec. III generator (1D partitioning, or Rem. 1's 2D
// grid with twoD) on r concurrent expander ranks and delivers every
// generated product arc of C = A ⊗ B to emit in batches. It is the
// engine run with the single-consumer streaming sink: instead of routing
// edges to per-rank storage, all ranks feed one consumer — kronserve's
// HTTP response writer — so memory stays O(r·batch) no matter how large
// |E_C| is.
//
// emit is called from a single goroutine (Stream's caller), in the
// plan's deterministic stream order (see StreamChainFrom); the batch
// slice is recycled after emit returns and must not be retained. Stream
// stops early when ctx is cancelled or emit returns an error; either way
// the expander ranks are torn down before Stream returns — every failure
// mode completes or errors, never hangs (see DESIGN.md §3a, "Failure
// semantics"). Stats counters follow the Generate* conventions, with
// every delivered edge accounted as routed traffic to the consumer.
//
// rec arms the run supervisor (see Recovery); the zero value streams
// unsupervised. Because the stream sink holds undelivered edges in the
// per-rank batch buffer across attempts and the fenced sinks suppress
// replayed prefixes, a recovered stream delivers every edge exactly once.
func Stream(ctx context.Context, a, b *graph.Graph, r int, twoD bool, batch int, rec Recovery, emit func([]graph.Edge) error) (Stats, error) {
	ch, err := core.NewChain(a, b)
	if err != nil {
		return Stats{}, err
	}
	return StreamChain(ctx, ch, r, twoD, batch, rec, emit)
}

// StreamChain is Stream over a factor chain A₁⊗…⊗Aₖ — the /gen serving
// path at any chain depth, with the same exactly-once recovery
// semantics. It is StreamChainFrom at offset 0 with no limit.
func StreamChain(ctx context.Context, ch *core.Chain, r int, twoD bool, batch int, rec Recovery, emit func([]graph.Edge) error) (Stats, error) {
	return StreamChainFrom(ctx, ch, r, twoD, batch, 0, -1, rec, emit)
}

// StreamChainFrom streams a contiguous range of the chain product's
// deterministic edge stream: limit arcs (< 0 = through the end) starting
// at global arc offset. The skipped prefix is never generated — the
// plan is sliced up front (Plan.Slice locates the start tile and
// in-tile position in O(tiles) from closed-form arc counts) and each
// boundary rank starts mid-tile via the kernel's windowed expansion.
//
// The stream order is canonical and reproducible: tiles in ascending
// plan-ID order, each tile's edges in the kernel's fixed expansion
// order. Under 1D partitioning this equals the serial chain enumeration
// (core.Chain.Arcs) regardless of r; under 2D it is the deterministic
// tile-grid order for that (layout, r). Identical (chain, layout, r,
// offset) always yield the identical byte stream — the property HTTP
// Range/resume-token serving depends on.
//
// Recovery.Reassign is forced off: ordered delivery pins each tile to
// its planned rank, so recovery respawns the crashed rank's assignment
// instead of moving tiles (exactly-once fencing is unaffected).
func StreamChainFrom(ctx context.Context, ch *core.Chain, r int, twoD bool, batch int, offset, limit int64, rec Recovery, emit func([]graph.Edge) error) (Stats, error) {
	if r < 1 {
		return Stats{}, fmt.Errorf("dist: stream needs ≥ 1 rank, got %d", r)
	}
	if batch <= 0 {
		batch = DefaultStreamBatch
	}
	plan, err := sliceForChain(ch, r, twoD, offset, limit)
	if err != nil {
		return Stats{}, err
	}
	rec.Reassign = false
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sink := newStreamSink(ctx, batch, r)
	var st Stats
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		st, runErr = Run(ctx, Config{Plan: plan, Sink: sink, Recovery: rec, BatchSize: batch})
		for _, c := range sink.chans {
			close(c)
		}
	}()

	// The consumer walks tiles in global ID order, pulling each tile's
	// batches from its owning rank's channel until the tile's closed-form
	// arc count is satisfied. Per-rank FIFO delivery plus ID-increasing
	// per-rank tile lists guarantee the next batch on the needed channel
	// belongs to the needed tile; the check stays as a loud invariant.
	type tileRef struct {
		id     int
		rank   int
		expect int64
	}
	var order []tileRef
	for rank, tiles := range plan.Tiles {
		for _, t := range tiles {
			if n := t.Arcs(); n > 0 {
				order = append(order, tileRef{id: t.ID, rank: rank, expect: n})
			}
		}
	}
	for i := 1; i < len(order); i++ { // insertion merge of per-rank sorted runs
		for j := i; j > 0 && order[j].id < order[j-1].id; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	// nextBatch blocks for the expected rank's next delivery: a channel
	// batch, or — once the rank's sink has closed (its done signal) — the
	// remaining buffered batches and finally the parked residual (see
	// streamRankSink.Close). The done signal is what lets the consumer
	// collect a rank's sub-batch tail while other ranks are still running:
	// waiting for the whole run to finish would deadlock against ranks
	// blocked on their (bounded) channels. false means the rank delivers
	// nothing more for this stream.
	nextBatch := func(tr tileRef) (streamBatch, bool) {
		select {
		case b, ok := <-sink.chans[tr.rank]:
			if ok {
				return b, true
			}
		case <-sink.done[tr.rank]:
			// Sink closed, so no further sends: drain what is buffered.
			select {
			case b, ok := <-sink.chans[tr.rank]:
				if ok {
					return b, true
				}
			default:
			}
		}
		if res := sink.takeResidual(tr.rank); res != nil {
			if res.tile == tr.id {
				return *res, true
			}
			sink.recycle(res.edges)
		}
		return streamBatch{}, false
	}

	var emitErr error
consume:
	for _, tr := range order {
		for got := int64(0); got < tr.expect; {
			b, ok := nextBatch(tr)
			if !ok {
				break consume // the stream ended early (error or cancel)
			}
			if b.tile != tr.id {
				emitErr = fmt.Errorf("dist: stream order violated: got tile %d, want %d", b.tile, tr.id)
				cancel()
				sink.recycle(b.edges)
				break consume
			}
			got += int64(len(b.edges))
			if emitErr != nil || ctx.Err() != nil {
				sink.recycle(b.edges)
				continue
			}
			err := emit(b.edges)
			// Recycle unconditionally — the emit-error path must return
			// the batch to the pool too, or the buffer leaks.
			sink.recycle(b.edges)
			if err != nil {
				emitErr = err
				cancel()
			}
		}
	}
	// Drain so expander ranks blocked on a flush can exit; every leftover
	// batch — channel or residual — goes back to the pool.
	for _, c := range sink.chans {
		for b := range c {
			sink.recycle(b.edges)
		}
	}
	<-done
	for i := range sink.chans {
		if res := sink.takeResidual(i); res != nil {
			sink.recycle(res.edges)
		}
	}

	// The engine's transport counters are idle here (no Owner routing);
	// delivery to the consumer is the stream's communication.
	st.Messages = atomic.LoadInt64(&sink.messages)
	st.EdgesRouted = atomic.LoadInt64(&sink.routed)
	st.BytesSent = atomic.LoadInt64(&sink.bytes)
	// Leak probe: the stream sink pools its own buffers (separate from the
	// cluster's exchange pool); fold its balance into the run's counter.
	st.OutstandingBufs += atomic.LoadInt64(&sink.outstanding)
	switch {
	case emitErr != nil:
		return st, emitErr
	case context.Cause(ctx) != nil:
		return st, context.Cause(ctx)
	default:
		return st, runErr
	}
}
