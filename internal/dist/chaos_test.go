package dist

// Chaos soak and teardown regressions for the simulated cluster. Seeded
// fault schedules (link delays, probabilistic drops with bounded
// redelivery, rank crashes at every injection point) run against the
// full engine matrix — 1D and 2D plans, routed and unrouted sinks,
// memory/count/store sinks — each under a watchdog. The invariant is
// the paper's verifiability contract: every run either produces the
// exact reference edge set or returns the injected fault as its error.
// No hangs, no partial silent success.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/dist/transport"
	chantransport "kronlab/internal/dist/transport/chan"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

const chaosWatchdog = 60 * time.Second

// runWithWatchdog fails the test loudly if fn does not return within the
// deadline — a reintroduced collective or exchange hang trips the
// watchdog instead of stalling the whole test binary.
func runWithWatchdog(t *testing.T, d time.Duration, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("watchdog: run still blocked after %v", d)
		return nil
	}
}

// chaosKind enumerates the fault families the soak cycles through.
type chaosKind int

const (
	chaosBaseline        chaosKind = iota // no faults armed
	chaosDelay                            // per-link delivery delay
	chaosDropRecoverable                  // drops with ample redelivery budget
	chaosDropLossy                        // certain drop, tiny budget → ErrMessageLost
	chaosCrashSink                        // rank dies before sink setup
	chaosCrashExpand                      // rank dies mid-expansion
	chaosCrashExchange                    // rank dies on an exchange send
	chaosCrashCollective                  // rank dies entering the teardown collective
	chaosKindCount
)

func (k chaosKind) String() string {
	return [...]string{"baseline", "delay", "drop-recoverable", "drop-lossy",
		"crash-sink", "crash-expand", "crash-exchange", "crash-collective"}[k]
}

// plannedWork returns the rank with the most planned expansion work and
// that rank's product-edge count — the deterministic target for a
// mid-expansion crash.
func plannedWork(p Plan) (rank int, edges int64) {
	for rk, tiles := range p.Tiles {
		var w int64
		for _, tl := range tiles {
			w += tl.Arcs()
		}
		if w > edges {
			rank, edges = rk, w
		}
	}
	return rank, edges
}

// TestChaosSoak drives ≥64 seeded fault schedules through the engine.
// Every schedule must finish within the watchdog and either yield the
// exact reference edge set or surface the injected fault as the run's
// error.
func TestChaosSoak(t *testing.T) {
	a := gen.ER(6, 0.5, 101).WithFullSelfLoops()
	b := gen.PrefAttach(5, 2, 102)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	nC := a.NumVertices() * b.NumVertices()

	const schedules = 64
	for i := 0; i < schedules; i++ {
		i := i
		kind := chaosKind(i % int(chaosKindCount))
		r := 2 + i%4 // 2..5 ranks
		twoD := (i/8)%2 == 1
		// Link-fault kinds and exchange crashes need routing traffic;
		// the remaining kinds alternate to cover the unrouted path too.
		routed := true
		switch kind {
		case chaosBaseline, chaosCrashSink, chaosCrashExpand, chaosCrashCollective:
			routed = (i/16)%2 == 0
		}

		plan, err := planFor(a, b, r, twoD)
		if err != nil {
			t.Fatal(err)
		}

		fp := FaultPlan{Seed: int64(1000 + i)}
		expectCrash, expectLost := false, false
		switch kind {
		case chaosBaseline:
		case chaosDelay:
			fp.Link.MaxDelay = time.Millisecond
			// One extra-slow link, exercising the per-link override.
			fp.Links = map[Link]LinkFault{{From: 0, To: 1}: {MaxDelay: 3 * time.Millisecond}}
		case chaosDropRecoverable:
			// Loss probability per message is 0.4^33 — never, but every
			// cross-rank message is exercised through the retry loop.
			fp.Link.DropProb = 0.4
			fp.MaxRedeliver = 32
		case chaosDropLossy:
			// Every attempt drops and the budget is tiny: the first
			// cross-rank message (each rank flushes EOF to every peer,
			// and r ≥ 2) is declared lost and must fail the run loudly.
			fp.Link.DropProb = 1
			fp.MaxRedeliver = 2
			expectLost = true
		case chaosCrashSink:
			fp.CrashRank, fp.CrashPoint, fp.CrashAfter = i%r, FaultBeforeSinkSetup, 0
			expectCrash = true
		case chaosCrashExpand:
			rank, work := plannedWork(plan)
			fp.CrashRank, fp.CrashPoint, fp.CrashAfter = rank, FaultMidExpansion, int64(i%5)
			expectCrash = work > int64(i%5)
		case chaosCrashExchange:
			// Every rank performs at least r sends (the EOF flush to
			// each peer), so CrashAfter < r always fires.
			fp.CrashRank, fp.CrashPoint, fp.CrashAfter = i%r, FaultMidExchange, int64(i%2)
			expectCrash = true
		case chaosCrashCollective:
			// The teardown reduce enters three barriers per rank.
			fp.CrashRank, fp.CrashPoint, fp.CrashAfter = i%r, FaultInCollective, int64(i%3)
			expectCrash = true
		}

		cfg := Config{Plan: plan, Faults: &fp}
		var verify func(t *testing.T)
		switch {
		case kind == chaosDelay && i >= 32:
			// Routed on-disk path: shards must reassemble the product.
			ss := NewStoreSink(t.TempDir(), r)
			cfg.Owner, cfg.Sink = OwnerBySource, ss
			verify = func(t *testing.T) {
				st, err := ss.Finalize(nC)
				if err != nil {
					t.Fatal(err)
				}
				g, err := st.LoadGraph()
				if err != nil {
					t.Fatal(err)
				}
				if !g.Equal(want) {
					t.Fatal("on-disk chaos product differs from reference")
				}
			}
		case kind == chaosBaseline && !routed:
			cs := &CountSink{}
			cfg.Sink = cs
			verify = func(t *testing.T) {
				if cs.Total() != want.NumArcs() {
					t.Fatalf("counted %d edges, reference has %d", cs.Total(), want.NumArcs())
				}
			}
		default:
			ms := NewMemorySink(r)
			cfg.Sink = ms
			if routed {
				cfg.Owner = OwnerByEdge
			}
			verify = func(t *testing.T) {
				var arcs []graph.Edge
				for _, s := range ms.PerRank {
					arcs = append(arcs, s...)
				}
				g, err := graph.New(nC, arcs)
				if err != nil {
					t.Fatal(err)
				}
				if !g.Equal(want) {
					t.Fatal("run reported success but edge set differs from reference")
				}
			}
		}

		name := fmt.Sprintf("%02d_%s_r%d_%s_%s", i, kind, r,
			map[bool]string{false: "1d", true: "2d"}[twoD],
			map[bool]string{false: "unrouted", true: "routed"}[routed])
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runErr := runWithWatchdog(t, chaosWatchdog, func() error {
				_, err := Run(context.Background(), cfg)
				return err
			})
			switch {
			case expectCrash:
				var ce *RankCrashError
				if !errors.As(runErr, &ce) {
					t.Fatalf("want RankCrashError, got %v", runErr)
				}
				if ce.Rank != fp.CrashRank || ce.Point != fp.CrashPoint {
					t.Fatalf("crash surfaced as rank %d at %s, injected rank %d at %s",
						ce.Rank, ce.Point, fp.CrashRank, fp.CrashPoint)
				}
			case expectLost:
				if !errors.Is(runErr, ErrMessageLost) {
					t.Fatalf("want ErrMessageLost, got %v", runErr)
				}
			default:
				if runErr != nil {
					t.Fatalf("recoverable schedule failed: %v", runErr)
				}
				verify(t)
			}
		})
	}
}

// TestBarrierReleasesOnRankFailure is the collective-deadlock regression:
// a rank error during a collective used to leave every other rank waiting
// on the barrier cond var forever. BarrierContext must release and return
// the dead rank's error as the run's cause.
func TestBarrierReleasesOnRankFailure(t *testing.T) {
	boom := errors.New("rank 2 died")
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			if rk.ID() == 2 {
				return boom
			}
			if err := rk.BarrierContext(); !errors.Is(err, boom) {
				return fmt.Errorf("BarrierContext returned %v, want the dead rank's error", err)
			}
			return nil
		})
	})
	if !errors.Is(runErr, boom) {
		t.Fatalf("run error = %v, want the dead rank's error", runErr)
	}
}

// The legacy blocking Barrier must also release (by returning) on a
// cancelled run instead of hanging its callers.
func TestBarrierLegacyUnblocksOnCancelledRun(t *testing.T) {
	boom := errors.New("rank 0 died")
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			if rk.ID() == 0 {
				return boom
			}
			rk.Barrier() // must return, not hang
			return nil
		})
	})
	if !errors.Is(runErr, boom) {
		t.Fatalf("run error = %v, want boom", runErr)
	}
}

func TestAllReduceSumCancelledReturnsCause(t *testing.T) {
	boom := errors.New("rank 3 died")
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			if rk.ID() == 3 {
				return boom
			}
			if _, err := rk.AllReduceSumContext(1); !errors.Is(err, boom) {
				return fmt.Errorf("AllReduceSumContext returned %v, want the dead rank's error", err)
			}
			return nil
		})
	})
	if !errors.Is(runErr, boom) {
		t.Fatalf("run error = %v, want boom", runErr)
	}
}

// TestClusterOneShotAfterCancelledRun is the stale-inbox regression: an
// aborted run used to leave its cancelled context and undelivered
// messages in place, so a second run on the same cluster would misroute
// stale batches into the new exchange. The cluster is now explicitly
// one-shot, and Reset drains the residue.
func TestClusterOneShotAfterCancelledRun(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("rank 0 aborted mid-exchange")
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			if rk.ID() != 0 {
				return nil
			}
			// Stage an undelivered message, then die before EOF: the
			// exact residue an aborted exchange leaves behind.
			buf := c.getBuf(rk.ID(), DefaultBatchSize)
			buf = append(buf, graph.Edge{U: 7, V: 7})
			s := newShipper(rk, DefaultBatchSize, nil)
			s.send(1, Message{Edges: buf})
			return boom
		})
	})
	if !errors.Is(runErr, boom) {
		t.Fatalf("aborted run returned %v, want boom", runErr)
	}
	tr := c.tr.(*chantransport.Transport)
	if tr.Depth(1) == 0 {
		t.Fatal("precondition: aborted run should have left a stale inbox message")
	}

	// Reuse without Reset is the corruption hazard — it must be refused.
	if err := c.Run(func(rk *Rank) error { return nil }); !errors.Is(err, ErrClusterUsed) {
		t.Fatalf("second run on a used cluster = %v, want ErrClusterUsed", err)
	}

	c.Reset()
	for i := 0; i < c.Size(); i++ {
		if n := tr.Depth(i); n != 0 {
			t.Fatalf("inbox %d still holds %d stale messages after Reset", i, n)
		}
	}
	if n := c.outstandingBufs(); n != 0 {
		t.Fatalf("%d pooled buffers still outstanding after Reset", n)
	}
	if st := c.Stats(); st.Messages != 0 || st.EdgesRouted != 0 || st.BytesSent != 0 || st.MaxInboxDepth != 0 {
		t.Fatalf("Reset did not zero stats: %+v", st)
	}

	// A real exchange on the reset cluster delivers exactly the fresh
	// edges — the stale (7,7) batch must not reappear.
	received := make([][]graph.Edge, 2)
	runErr = runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			var got []graph.Edge
			err := rk.Exchange(func(emit func(to int, e graph.Edge) bool) {
				for to := 0; to < 2; to++ {
					emit(to, graph.Edge{U: int64(rk.ID()), V: int64(to)})
				}
			}, func(e graph.Edge) {
				got = append(got, e)
			})
			received[rk.ID()] = got
			return err
		})
	})
	if runErr != nil {
		t.Fatalf("post-Reset run failed: %v", runErr)
	}
	for id, got := range received {
		if len(got) != 2 {
			t.Fatalf("rank %d received %d edges after Reset, want 2: %v", id, len(got), got)
		}
		for _, e := range got {
			if e.U == 7 && e.V == 7 {
				t.Fatalf("rank %d received a stale pre-Reset batch: %v", id, got)
			}
		}
	}
}

// TestExchangeAbortReturnsPooledBuffersOnCancel is the buffer-leak
// regression: staged, un-flushed per-destination batches used to vanish
// from the pool whenever an exchange aborted.
func TestExchangeAbortReturnsPooledBuffersOnCancel(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("rank 0 died before exchanging")
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			if rk.ID() == 0 {
				return boom
			}
			// Stage one small batch per destination (nothing reaches the
			// batchSize flush threshold), then hold the exchange open
			// until teardown so the EOF flush happens on a dead run.
			return rk.Exchange(func(emit func(to int, e graph.Edge) bool) {
				for to := 0; to < 3; to++ {
					emit(to, graph.Edge{U: int64(rk.ID()), V: int64(to)})
				}
				<-rk.Context().Done()
			}, func(graph.Edge) {})
		})
	})
	if !errors.Is(runErr, boom) {
		t.Fatalf("run error = %v, want boom", runErr)
	}
	if n := c.outstandingBufs(); n != 0 {
		t.Fatalf("aborted exchange leaked %d pooled batch buffers", n)
	}
}

// cancelAfterStores cancels the run's context after a global number of
// sink stores, from whichever rank gets there first.
type cancelAfterStores struct {
	inner  Sink
	cancel context.CancelFunc
	after  int64
	n      int64
}

func (s *cancelAfterStores) Rank(rk *Rank) (RankSink, error) {
	rs, err := s.inner.Rank(rk)
	if err != nil {
		return nil, err
	}
	return &cancelAfterRankSink{s: s, inner: rs}, nil
}

type cancelAfterRankSink struct {
	s     *cancelAfterStores
	inner RankSink
}

func (t *cancelAfterRankSink) Store(e graph.Edge) error {
	if atomic.AddInt64(&t.s.n, 1) == t.s.after {
		t.s.cancel()
	}
	return t.inner.Store(e)
}

func (t *cancelAfterRankSink) Close() error { return t.inner.Close() }

// TestStatsConsistentWhenCancelledMidExchange asserts the per-rank
// counters are never torn by teardown: whatever a cancelled run managed
// to do, PerRankStored must equal what each rank's sink actually holds
// and PerRankGenerated must sum to the global counter.
func TestStatsConsistentWhenCancelledMidExchange(t *testing.T) {
	// The product must exceed the cluster's total buffering capacity —
	// r inboxes of 4r+16 messages × batchSize edges plus the producers'
	// staged batches (~148k edges at r=4) — or producers could finish
	// the whole expansion into the inboxes before a starved receiver
	// stores the edge that triggers cancellation, and the "expansion
	// stopped" assertion below would be a scheduling coin flip. At ~192k
	// edges the senders must block, receivers must drain, and the cancel
	// at 1000 stores always lands mid-run.
	a := gen.ER(30, 0.5, 61)
	b := gen.ER(30, 0.5, 62)
	const r = 4
	plan, err := Plan1D(a, b, r)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mem := NewMemorySink(r)
	sink := &cancelAfterStores{inner: mem, cancel: cancel, after: 1000}
	var st Stats
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		var err error
		st, err = Run(ctx, Config{Plan: plan, Owner: OwnerByEdge, Sink: sink})
		return err
	})
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("run error = %v, want context.Canceled", runErr)
	}
	if len(st.PerRankGenerated) != r || len(st.PerRankStored) != r {
		t.Fatalf("per-rank slices missing on cancelled run: %+v", st)
	}
	var sumGen, sumStored int64
	for rk := 0; rk < r; rk++ {
		if g := st.PerRankGenerated[rk]; g < 0 {
			t.Fatalf("rank %d: negative generated count %d", rk, g)
		}
		if got, counted := int64(len(mem.PerRank[rk])), st.PerRankStored[rk]; got != counted {
			t.Fatalf("rank %d: sink holds %d edges but PerRankStored says %d (torn count)", rk, got, counted)
		}
		sumGen += st.PerRankGenerated[rk]
		sumStored += st.PerRankStored[rk]
	}
	if sumGen != st.EdgesGenerated {
		t.Fatalf("per-rank generated sums to %d, global counter %d", sumGen, st.EdgesGenerated)
	}
	if sumStored > sumGen {
		t.Fatalf("stored %d edges but only generated %d", sumStored, sumGen)
	}
	if total := a.NumArcs() * b.NumArcs(); st.EdgesGenerated >= total {
		t.Fatalf("cancellation did not stop expansion: %d of %d", st.EdgesGenerated, total)
	}
}

// TestChaosReplayDeterministic pins the seeded-schedule property: the
// same FaultPlan on a Reset cluster surfaces the same fault.
func TestChaosReplayDeterministic(t *testing.T) {
	a := gen.ER(8, 0.5, 71)
	b := gen.ER(7, 0.5, 72)
	plan, err := planFor(a, b, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	fp := FaultPlan{Seed: 7, Link: LinkFault{DropProb: 1}, MaxRedeliver: 1}
	for round := 0; round < 2; round++ {
		runErr := runWithWatchdog(t, chaosWatchdog, func() error {
			_, err := Run(context.Background(), Config{
				Plan: plan, Owner: OwnerBySource, Sink: NewMemorySink(3), Faults: &fp,
			})
			return err
		})
		if !errors.Is(runErr, ErrMessageLost) {
			t.Fatalf("round %d: want ErrMessageLost, got %v", round, runErr)
		}
	}
}

// --- Supervised recovery -------------------------------------------------
//
// The tests below flip the chaos contract for recoverable schedules: with
// Recovery armed, a run must produce the exact reference edge set
// *despite* the injected fault — bounded retries, exactly-once sinks, no
// buffer leaks — and exhausting the budget must degrade to the loud
// failure the unsupervised engine reports.

// mergedArcs flattens a MemorySink's per-rank slices.
func mergedArcs(ms *MemorySink) []graph.Edge {
	var arcs []graph.Edge
	for _, s := range ms.PerRank {
		arcs = append(arcs, s...)
	}
	return arcs
}

// assertExact rebuilds a graph from arcs and compares it to the reference.
func assertExact(t *testing.T, nC int64, arcs []graph.Edge, want *graph.Graph) {
	t.Helper()
	g, err := graph.New(nC, arcs)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("recovered run's edge set differs from reference")
	}
}

// TestRecoverCrashEachPoint crashes one rank at each injection point and
// asserts the supervised run still delivers the exact product, with the
// retry surfaced in Stats and every pooled buffer returned.
func TestRecoverCrashEachPoint(t *testing.T) {
	a := gen.ER(6, 0.5, 201).WithFullSelfLoops()
	b := gen.PrefAttach(5, 2, 202)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	nC := a.NumVertices() * b.NumVertices()

	points := []FaultPoint{FaultBeforeSinkSetup, FaultMidExpansion, FaultMidExchange, FaultInCollective}
	for pi, point := range points {
		for _, routed := range []bool{true, false} {
			if point == FaultMidExchange && !routed {
				continue // unrouted runs never send, the point is unreachable
			}
			point, routed := point, routed
			twoD := pi%2 == 1
			name := fmt.Sprintf("%s_%s_%s", point,
				map[bool]string{false: "1d", true: "2d"}[twoD],
				map[bool]string{false: "unrouted", true: "routed"}[routed])
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				const r = 3
				plan, err := planFor(a, b, r, twoD)
				if err != nil {
					t.Fatal(err)
				}
				crash := CrashSpec{Rank: 1, Point: point}
				if point == FaultMidExpansion {
					rank, work := plannedWork(plan)
					crash.Rank, crash.After = rank, work/2
				}
				ms := NewMemorySink(r)
				cfg := Config{
					Plan:     plan,
					Sink:     ms,
					Faults:   &FaultPlan{Seed: int64(300 + pi), Crashes: []CrashSpec{crash}},
					Recovery: Recovery{MaxRetries: 2, Backoff: time.Millisecond},
				}
				if routed {
					cfg.Owner = OwnerByEdge
				}
				var st Stats
				runErr := runWithWatchdog(t, chaosWatchdog, func() error {
					var err error
					st, err = Run(context.Background(), cfg)
					return err
				})
				if runErr != nil {
					t.Fatalf("supervised run failed despite retry budget: %v", runErr)
				}
				assertExact(t, nC, mergedArcs(ms), want)
				if got := st.TotalRetries(); got < 1 || got > 2 {
					t.Fatalf("TotalRetries = %d, want 1..2", got)
				}
				if st.RetriesPerRank[crash.Rank] == 0 {
					t.Fatalf("retry not attributed to crashed rank %d: %v", crash.Rank, st.RetriesPerRank)
				}
				if st.RecoveredRuns != 1 {
					t.Fatalf("RecoveredRuns = %d, want 1", st.RecoveredRuns)
				}
				if st.OutstandingBufs != 0 {
					t.Fatalf("recovered run leaked %d pooled buffers", st.OutstandingBufs)
				}
			})
		}
	}
}

// TestRecoverLostBatch schedules one deterministic permanent message loss
// and asserts the supervised replay gets the batch through, blaming the
// sending rank for the retry.
func TestRecoverLostBatch(t *testing.T) {
	a := gen.ER(7, 0.5, 211)
	b := gen.ER(6, 0.5, 212)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	const r = 3
	plan, err := Plan1D(a, b, r)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMemorySink(r)
	var st Stats
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		var err error
		st, err = Run(context.Background(), Config{
			Plan: plan, Owner: OwnerBySource, Sink: ms,
			Faults:   &FaultPlan{Seed: 213, LoseAfter: 2, LoseDeliveries: 1},
			Recovery: Recovery{MaxRetries: 1, Backoff: time.Millisecond},
		})
		return err
	})
	if runErr != nil {
		t.Fatalf("supervised run failed despite retry budget: %v", runErr)
	}
	assertExact(t, a.NumVertices()*b.NumVertices(), mergedArcs(ms), want)
	if st.TotalRetries() != 1 || st.RecoveredRuns != 1 {
		t.Fatalf("want exactly one recovering retry, got retries=%d recovered=%d",
			st.TotalRetries(), st.RecoveredRuns)
	}
	if st.OutstandingBufs != 0 {
		t.Fatalf("recovered run leaked %d pooled buffers", st.OutstandingBufs)
	}
}

// TestRecoverCrashPlusLostBatch is the acceptance scenario: one rank
// crashes mid-expansion AND one batch is permanently dropped, and the
// supervised run still completes with the exact core.Product edge set,
// retry stats > 0 and no buffer leaks.
func TestRecoverCrashPlusLostBatch(t *testing.T) {
	a := gen.ER(8, 0.5, 221).WithFullSelfLoops()
	b := gen.PrefAttach(6, 2, 222)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	const r = 4
	plan, err := planFor(a, b, r, true)
	if err != nil {
		t.Fatal(err)
	}
	rank, work := plannedWork(plan)
	ms := NewMemorySink(r)
	var st Stats
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		var err error
		st, err = Run(context.Background(), Config{
			Plan: plan, Owner: OwnerByEdge, Sink: ms,
			Faults: &FaultPlan{
				Seed:      223,
				Crashes:   []CrashSpec{{Rank: rank, Point: FaultMidExpansion, After: work / 2}},
				LoseAfter: 1, LoseDeliveries: 1,
			},
			Recovery: Recovery{MaxRetries: 3, Backoff: time.Millisecond},
		})
		return err
	})
	if runErr != nil {
		t.Fatalf("double-fault schedule failed despite retry budget: %v", runErr)
	}
	assertExact(t, a.NumVertices()*b.NumVertices(), mergedArcs(ms), want)
	if got := st.TotalRetries(); got < 1 || got > 3 {
		t.Fatalf("TotalRetries = %d, want 1..3 (bounded by budget)", got)
	}
	if st.RecoveredRuns != 1 {
		t.Fatalf("RecoveredRuns = %d, want 1", st.RecoveredRuns)
	}
	if st.OutstandingBufs != 0 {
		t.Fatalf("recovered run leaked %d pooled buffers", st.OutstandingBufs)
	}
}

// TestRecoverExhaustedBudgetStaysLoud pins the degradation contract: a
// permanently broken rank (Repeat crash) without reassignment exhausts
// MaxRetries and the run returns the injected fault exactly like an
// unsupervised one — loudly, with no silent partial output.
func TestRecoverExhaustedBudgetStaysLoud(t *testing.T) {
	a := gen.ER(6, 0.5, 231)
	b := gen.ER(6, 0.5, 232)
	const r = 3
	plan, err := Plan1D(a, b, r)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMemorySink(r)
	var st Stats
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		var err error
		st, err = Run(context.Background(), Config{
			Plan: plan, Owner: OwnerBySource, Sink: ms,
			Faults:   &FaultPlan{Seed: 233, Crashes: []CrashSpec{{Rank: 1, Point: FaultMidExpansion, Repeat: true}}},
			Recovery: Recovery{MaxRetries: 2, Backoff: time.Millisecond},
		})
		return err
	})
	var ce *RankCrashError
	if !errors.As(runErr, &ce) || ce.Rank != 1 || ce.Point != FaultMidExpansion {
		t.Fatalf("want the injected RankCrashError after budget exhaustion, got %v", runErr)
	}
	if got := st.TotalRetries(); got != 2 {
		t.Fatalf("TotalRetries = %d, want the full budget of 2", got)
	}
	if st.RecoveredRuns != 0 {
		t.Fatalf("RecoveredRuns = %d on a failed run", st.RecoveredRuns)
	}
	if st.OutstandingBufs != 0 {
		t.Fatalf("failed supervised run leaked %d pooled buffers", st.OutstandingBufs)
	}
}

// TestPartitionDetectedLoudly black-holes a rank mid-exchange with every
// channel still open — the failure mode nothing trips on except a
// failure detector — and asserts the unsupervised run dies promptly with
// a PeerError naming the partitioned rank, rather than hanging on
// batches that will never arrive.
func TestPartitionDetectedLoudly(t *testing.T) {
	a := gen.ER(8, 0.5, 251)
	b := gen.ER(7, 0.5, 252)
	const r = 3
	plan, err := Plan1D(a, b, r)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMemorySink(r)
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		_, err := Run(context.Background(), Config{
			Plan: plan, Owner: OwnerBySource, Sink: ms,
			Faults: &FaultPlan{Seed: 253, PartitionRank: 1, PartitionAfterSends: 3},
		})
		return err
	})
	var pe *transport.PeerError
	if !errors.As(runErr, &pe) {
		t.Fatalf("partitioned run returned %v, want *transport.PeerError", runErr)
	}
	if pe.Proc != 1 {
		t.Fatalf("PeerError names rank %d, want the partitioned rank 1", pe.Proc)
	}
	if !errors.Is(pe.Err, chantransport.ErrHeartbeat) {
		t.Fatalf("PeerError cause = %v, want the failure-detection verdict", pe.Err)
	}
}

// TestRecoverPartition is the supervised form: the partition kills the
// first attempt via the failure detector, Reset heals the network (the
// fault is one-shot, like a crash that does not re-fire), and the replay
// delivers the exact product with the retry blamed on the partitioned
// rank and no leaked buffers.
func TestRecoverPartition(t *testing.T) {
	a := gen.ER(8, 0.5, 261).WithFullSelfLoops()
	b := gen.PrefAttach(6, 2, 262)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	const r = 3
	plan, err := Plan1D(a, b, r)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMemorySink(r)
	var st Stats
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		var err error
		st, err = Run(context.Background(), Config{
			Plan: plan, Owner: OwnerBySource, Sink: ms,
			Faults:   &FaultPlan{Seed: 263, PartitionRank: 1, PartitionAfterSends: 4},
			Recovery: Recovery{MaxRetries: 2, Backoff: time.Millisecond},
		})
		return err
	})
	if runErr != nil {
		t.Fatalf("supervised run failed despite a healed partition: %v", runErr)
	}
	assertExact(t, a.NumVertices()*b.NumVertices(), mergedArcs(ms), want)
	if st.TotalRetries() < 1 {
		t.Fatal("partition recovery left no retry trace")
	}
	if st.RetriesPerRank[1] == 0 {
		t.Fatalf("retry not attributed to the partitioned rank: %v", st.RetriesPerRank)
	}
	if st.RecoveredRuns != 1 {
		t.Fatalf("RecoveredRuns = %d, want 1", st.RecoveredRuns)
	}
	if st.OutstandingBufs != 0 {
		t.Fatalf("recovered run leaked %d pooled buffers", st.OutstandingBufs)
	}
}

// TestRespawnReassignBrokenRank: the same permanently broken rank is
// survivable once Reassign moves its tiles to the survivors — the broken
// rank keeps participating in the exchange and collectives, it just never
// expands again.
func TestRespawnReassignBrokenRank(t *testing.T) {
	a := gen.ER(6, 0.5, 241).WithFullSelfLoops()
	b := gen.PrefAttach(6, 2, 242)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	const r = 4
	plan, err := planFor(a, b, r, true) // 2D: several tiles per rank to move
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMemorySink(r)
	var st Stats
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		var err error
		st, err = Run(context.Background(), Config{
			Plan: plan, Owner: OwnerByEdge, Sink: ms,
			Faults:   &FaultPlan{Seed: 243, Crashes: []CrashSpec{{Rank: 2, Point: FaultMidExpansion, Repeat: true}}},
			Recovery: Recovery{MaxRetries: 2, Backoff: time.Millisecond, Reassign: true},
		})
		return err
	})
	if runErr != nil {
		t.Fatalf("reassignment should mask the broken rank, got %v", runErr)
	}
	assertExact(t, a.NumVertices()*b.NumVertices(), mergedArcs(ms), want)
	if st.TilesReassigned == 0 {
		t.Fatal("no tiles reassigned off the broken rank")
	}
	if st.RecoveredRuns != 1 || st.TotalRetries() < 1 {
		t.Fatalf("recovery not surfaced: retries=%d recovered=%d", st.TotalRetries(), st.RecoveredRuns)
	}
	if st.OutstandingBufs != 0 {
		t.Fatalf("recovered run leaked %d pooled buffers", st.OutstandingBufs)
	}
}

// TestEpochFencingDropsStaleBatch forges a batch from a stale epoch into
// an inbox and asserts the receiver's fence drops it whole — counted in
// Stats, buffer recycled, edges never delivered.
func TestEpochFencingDropsStaleBatch(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	c.epoch = 5
	stale := c.getBuf(0, DefaultBatchSize)
	stale = append(stale, graph.Edge{U: 9, V: 9})
	c.tr.(*chantransport.Transport).Inject(Message{From: 0, Dest: 1, Epoch: 3, Edges: stale})

	received := make([][]graph.Edge, 2)
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			var got []graph.Edge
			err := rk.Exchange(func(emit func(to int, e graph.Edge) bool) {
				for to := 0; to < 2; to++ {
					emit(to, graph.Edge{U: int64(rk.ID()), V: int64(to)})
				}
			}, func(e graph.Edge) { got = append(got, e) })
			received[rk.ID()] = got
			return err
		})
	})
	if runErr != nil {
		t.Fatalf("exchange failed: %v", runErr)
	}
	for id, got := range received {
		if len(got) != 2 {
			t.Fatalf("rank %d received %d edges, want 2: %v", id, len(got), got)
		}
		for _, e := range got {
			if e.U == 9 && e.V == 9 {
				t.Fatalf("rank %d received the stale-epoch batch: %v", id, got)
			}
		}
	}
	st := c.Stats()
	if st.StaleBatches != 1 {
		t.Fatalf("StaleBatches = %d, want 1", st.StaleBatches)
	}
	if st.OutstandingBufs != 0 {
		t.Fatalf("stale batch's pooled buffer not recycled: %d outstanding", st.OutstandingBufs)
	}
}

// TestRecoverSoak sweeps seeded crash-then-recover schedules — every
// injection point, single and double faults, 1D/2D, routed and unrouted —
// asserting the exact edge set and a retry count bounded by the budget.
func TestRecoverSoak(t *testing.T) {
	a := gen.ER(6, 0.5, 251).WithFullSelfLoops()
	b := gen.PrefAttach(5, 2, 252)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	nC := a.NumVertices() * b.NumVertices()

	const schedules = 24
	for i := 0; i < schedules; i++ {
		i := i
		point := []FaultPoint{FaultBeforeSinkSetup, FaultMidExpansion, FaultMidExchange, FaultInCollective}[i%4]
		r := 2 + i%3
		twoD := (i/4)%2 == 1
		routed := point == FaultMidExchange || (i/8)%2 == 0
		doubleFault := routed && i%3 == 0
		const budget = 4

		plan, err := planFor(a, b, r, twoD)
		if err != nil {
			t.Fatal(err)
		}
		crash := CrashSpec{Rank: i % r, Point: point, After: int64(i % 2)}
		if point == FaultMidExpansion {
			rank, work := plannedWork(plan)
			if work <= crash.After {
				crash.After = 0
			}
			crash.Rank = rank
		}
		fp := &FaultPlan{Seed: int64(400 + i), Crashes: []CrashSpec{crash}}
		if doubleFault {
			fp.LoseAfter, fp.LoseDeliveries = int64(1+i%3), 1
		}
		ms := NewMemorySink(r)
		cfg := Config{
			Plan: plan, Sink: ms, Faults: fp,
			Recovery: Recovery{MaxRetries: budget, Backoff: time.Millisecond},
		}
		if routed {
			cfg.Owner = OwnerByEdge
		}

		name := fmt.Sprintf("%02d_%s_r%d_%s_%s%s", i, crash.Point, r,
			map[bool]string{false: "1d", true: "2d"}[twoD],
			map[bool]string{false: "unrouted", true: "routed"}[routed],
			map[bool]string{false: "", true: "_lossy"}[doubleFault])
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var st Stats
			runErr := runWithWatchdog(t, chaosWatchdog, func() error {
				var err error
				st, err = Run(context.Background(), cfg)
				return err
			})
			if runErr != nil {
				t.Fatalf("recoverable schedule failed: %v", runErr)
			}
			assertExact(t, nC, mergedArcs(ms), want)
			if got := st.TotalRetries(); got > budget {
				t.Fatalf("TotalRetries = %d exceeds budget %d", got, budget)
			}
			if st.OutstandingBufs != 0 {
				t.Fatalf("schedule leaked %d pooled buffers", st.OutstandingBufs)
			}
		})
	}
}

// TestRecoverAsyncStoreSink crashes ranks while the async store sink's
// writer goroutines are mid-drain, recovers under supervision, and
// proves the recovered on-disk store still holds exactly the
// core.Product edge set — the exactly-once contract of the batched sink
// under replay fencing. This is the store-backed twin of
// TestRecoverCrashEachPoint: the in-memory sink cannot see a writer
// goroutine double-appending a replayed batch or dropping a staged tail
// on teardown; the shard files can.
func TestRecoverAsyncStoreSink(t *testing.T) {
	a := gen.ER(8, 0.5, 231).WithFullSelfLoops()
	b := gen.PrefAttach(6, 2, 232)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	nC := a.NumVertices() * b.NumVertices()

	for pi, point := range []FaultPoint{FaultMidExpansion, FaultMidExchange, FaultInCollective} {
		point := point
		t.Run(fmt.Sprint(point), func(t *testing.T) {
			t.Parallel()
			const r = 3
			plan, err := planFor(a, b, r, false)
			if err != nil {
				t.Fatal(err)
			}
			crash := CrashSpec{Rank: 1, Point: point}
			if point == FaultMidExpansion {
				// Crash halfway through the busiest rank's expansion so
				// the sink already staged (and possibly flushed) edges
				// that the replay will regenerate behind the fence.
				rank, work := plannedWork(plan)
				crash.Rank, crash.After = rank, work/2
			}
			ss := NewStoreSink(t.TempDir(), r)
			var st Stats
			runErr := runWithWatchdog(t, chaosWatchdog, func() error {
				var err error
				st, err = Run(context.Background(), Config{
					Plan: plan, Owner: OwnerBySource, Sink: ss,
					Faults:   &FaultPlan{Seed: int64(400 + pi), Crashes: []CrashSpec{crash}},
					Recovery: Recovery{MaxRetries: 2, Backoff: time.Millisecond},
				})
				return err
			})
			if runErr != nil {
				t.Fatalf("supervised run failed despite retry budget: %v", runErr)
			}
			store, err := ss.Finalize(nC)
			if err != nil {
				t.Fatal(err)
			}
			g, err := store.LoadGraph()
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(want) {
				t.Fatal("recovered store differs from core.Product — async sink broke exactly-once under replay")
			}
			if st.RecoveredRuns != 1 {
				t.Fatalf("RecoveredRuns = %d, want 1", st.RecoveredRuns)
			}
			if st.OutstandingBufs != 0 {
				t.Fatalf("recovered run leaked %d pooled buffers", st.OutstandingBufs)
			}
		})
	}
}
