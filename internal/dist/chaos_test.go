package dist

// Chaos soak and teardown regressions for the simulated cluster. Seeded
// fault schedules (link delays, probabilistic drops with bounded
// redelivery, rank crashes at every injection point) run against the
// full engine matrix — 1D and 2D plans, routed and unrouted sinks,
// memory/count/store sinks — each under a watchdog. The invariant is
// the paper's verifiability contract: every run either produces the
// exact reference edge set or returns the injected fault as its error.
// No hangs, no partial silent success.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

const chaosWatchdog = 60 * time.Second

// runWithWatchdog fails the test loudly if fn does not return within the
// deadline — a reintroduced collective or exchange hang trips the
// watchdog instead of stalling the whole test binary.
func runWithWatchdog(t *testing.T, d time.Duration, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("watchdog: run still blocked after %v", d)
		return nil
	}
}

// chaosKind enumerates the fault families the soak cycles through.
type chaosKind int

const (
	chaosBaseline        chaosKind = iota // no faults armed
	chaosDelay                            // per-link delivery delay
	chaosDropRecoverable                  // drops with ample redelivery budget
	chaosDropLossy                        // certain drop, tiny budget → ErrMessageLost
	chaosCrashSink                        // rank dies before sink setup
	chaosCrashExpand                      // rank dies mid-expansion
	chaosCrashExchange                    // rank dies on an exchange send
	chaosCrashCollective                  // rank dies entering the teardown collective
	chaosKindCount
)

func (k chaosKind) String() string {
	return [...]string{"baseline", "delay", "drop-recoverable", "drop-lossy",
		"crash-sink", "crash-expand", "crash-exchange", "crash-collective"}[k]
}

// plannedWork returns the rank with the most planned expansion work and
// that rank's product-edge count — the deterministic target for a
// mid-expansion crash.
func plannedWork(p Plan) (rank int, edges int64) {
	for rk, tiles := range p.Tiles {
		var w int64
		for _, tl := range tiles {
			w += int64(len(tl.AArcs)) * tl.B.NumArcs()
		}
		if w > edges {
			rank, edges = rk, w
		}
	}
	return rank, edges
}

// TestChaosSoak drives ≥64 seeded fault schedules through the engine.
// Every schedule must finish within the watchdog and either yield the
// exact reference edge set or surface the injected fault as the run's
// error.
func TestChaosSoak(t *testing.T) {
	a := gen.ER(6, 0.5, 101).WithFullSelfLoops()
	b := gen.PrefAttach(5, 2, 102)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	nC := a.NumVertices() * b.NumVertices()

	const schedules = 64
	for i := 0; i < schedules; i++ {
		i := i
		kind := chaosKind(i % int(chaosKindCount))
		r := 2 + i%4 // 2..5 ranks
		twoD := (i/8)%2 == 1
		// Link-fault kinds and exchange crashes need routing traffic;
		// the remaining kinds alternate to cover the unrouted path too.
		routed := true
		switch kind {
		case chaosBaseline, chaosCrashSink, chaosCrashExpand, chaosCrashCollective:
			routed = (i/16)%2 == 0
		}

		plan, err := planFor(a, b, r, twoD)
		if err != nil {
			t.Fatal(err)
		}

		fp := FaultPlan{Seed: int64(1000 + i)}
		expectCrash, expectLost := false, false
		switch kind {
		case chaosBaseline:
		case chaosDelay:
			fp.Link.MaxDelay = time.Millisecond
			// One extra-slow link, exercising the per-link override.
			fp.Links = map[Link]LinkFault{{From: 0, To: 1}: {MaxDelay: 3 * time.Millisecond}}
		case chaosDropRecoverable:
			// Loss probability per message is 0.4^33 — never, but every
			// cross-rank message is exercised through the retry loop.
			fp.Link.DropProb = 0.4
			fp.MaxRedeliver = 32
		case chaosDropLossy:
			// Every attempt drops and the budget is tiny: the first
			// cross-rank message (each rank flushes EOF to every peer,
			// and r ≥ 2) is declared lost and must fail the run loudly.
			fp.Link.DropProb = 1
			fp.MaxRedeliver = 2
			expectLost = true
		case chaosCrashSink:
			fp.CrashRank, fp.CrashPoint, fp.CrashAfter = i%r, FaultBeforeSinkSetup, 0
			expectCrash = true
		case chaosCrashExpand:
			rank, work := plannedWork(plan)
			fp.CrashRank, fp.CrashPoint, fp.CrashAfter = rank, FaultMidExpansion, int64(i%5)
			expectCrash = work > int64(i%5)
		case chaosCrashExchange:
			// Every rank performs at least r sends (the EOF flush to
			// each peer), so CrashAfter < r always fires.
			fp.CrashRank, fp.CrashPoint, fp.CrashAfter = i%r, FaultMidExchange, int64(i%2)
			expectCrash = true
		case chaosCrashCollective:
			// The teardown reduce enters three barriers per rank.
			fp.CrashRank, fp.CrashPoint, fp.CrashAfter = i%r, FaultInCollective, int64(i%3)
			expectCrash = true
		}

		cfg := Config{Plan: plan, Faults: &fp}
		var verify func(t *testing.T)
		switch {
		case kind == chaosDelay && i >= 32:
			// Routed on-disk path: shards must reassemble the product.
			ss := NewStoreSink(t.TempDir(), r)
			cfg.Owner, cfg.Sink = OwnerBySource, ss
			verify = func(t *testing.T) {
				st, err := ss.Finalize(nC)
				if err != nil {
					t.Fatal(err)
				}
				g, err := st.LoadGraph()
				if err != nil {
					t.Fatal(err)
				}
				if !g.Equal(want) {
					t.Fatal("on-disk chaos product differs from reference")
				}
			}
		case kind == chaosBaseline && !routed:
			cs := &CountSink{}
			cfg.Sink = cs
			verify = func(t *testing.T) {
				if cs.Total() != want.NumArcs() {
					t.Fatalf("counted %d edges, reference has %d", cs.Total(), want.NumArcs())
				}
			}
		default:
			ms := NewMemorySink(r)
			cfg.Sink = ms
			if routed {
				cfg.Owner = OwnerByEdge
			}
			verify = func(t *testing.T) {
				var arcs []graph.Edge
				for _, s := range ms.PerRank {
					arcs = append(arcs, s...)
				}
				g, err := graph.New(nC, arcs)
				if err != nil {
					t.Fatal(err)
				}
				if !g.Equal(want) {
					t.Fatal("run reported success but edge set differs from reference")
				}
			}
		}

		name := fmt.Sprintf("%02d_%s_r%d_%s_%s", i, kind, r,
			map[bool]string{false: "1d", true: "2d"}[twoD],
			map[bool]string{false: "unrouted", true: "routed"}[routed])
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runErr := runWithWatchdog(t, chaosWatchdog, func() error {
				_, err := Run(context.Background(), cfg)
				return err
			})
			switch {
			case expectCrash:
				var ce *RankCrashError
				if !errors.As(runErr, &ce) {
					t.Fatalf("want RankCrashError, got %v", runErr)
				}
				if ce.Rank != fp.CrashRank || ce.Point != fp.CrashPoint {
					t.Fatalf("crash surfaced as rank %d at %s, injected rank %d at %s",
						ce.Rank, ce.Point, fp.CrashRank, fp.CrashPoint)
				}
			case expectLost:
				if !errors.Is(runErr, ErrMessageLost) {
					t.Fatalf("want ErrMessageLost, got %v", runErr)
				}
			default:
				if runErr != nil {
					t.Fatalf("recoverable schedule failed: %v", runErr)
				}
				verify(t)
			}
		})
	}
}

// TestBarrierReleasesOnRankFailure is the collective-deadlock regression:
// a rank error during a collective used to leave every other rank waiting
// on the barrier cond var forever. BarrierContext must release and return
// the dead rank's error as the run's cause.
func TestBarrierReleasesOnRankFailure(t *testing.T) {
	boom := errors.New("rank 2 died")
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			if rk.ID() == 2 {
				return boom
			}
			if err := rk.BarrierContext(); !errors.Is(err, boom) {
				return fmt.Errorf("BarrierContext returned %v, want the dead rank's error", err)
			}
			return nil
		})
	})
	if !errors.Is(runErr, boom) {
		t.Fatalf("run error = %v, want the dead rank's error", runErr)
	}
}

// The legacy blocking Barrier must also release (by returning) on a
// cancelled run instead of hanging its callers.
func TestBarrierLegacyUnblocksOnCancelledRun(t *testing.T) {
	boom := errors.New("rank 0 died")
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			if rk.ID() == 0 {
				return boom
			}
			rk.Barrier() // must return, not hang
			return nil
		})
	})
	if !errors.Is(runErr, boom) {
		t.Fatalf("run error = %v, want boom", runErr)
	}
}

func TestAllReduceSumCancelledReturnsCause(t *testing.T) {
	boom := errors.New("rank 3 died")
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			if rk.ID() == 3 {
				return boom
			}
			if _, err := rk.AllReduceSumContext(1); !errors.Is(err, boom) {
				return fmt.Errorf("AllReduceSumContext returned %v, want the dead rank's error", err)
			}
			return nil
		})
	})
	if !errors.Is(runErr, boom) {
		t.Fatalf("run error = %v, want boom", runErr)
	}
}

// TestClusterOneShotAfterCancelledRun is the stale-inbox regression: an
// aborted run used to leave its cancelled context and undelivered
// messages in place, so a second run on the same cluster would misroute
// stale batches into the new exchange. The cluster is now explicitly
// one-shot, and Reset drains the residue.
func TestClusterOneShotAfterCancelledRun(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("rank 0 aborted mid-exchange")
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			if rk.ID() != 0 {
				return nil
			}
			// Stage an undelivered message, then die before EOF: the
			// exact residue an aborted exchange leaves behind.
			buf := c.getBuf()
			buf = append(buf, graph.Edge{U: 7, V: 7})
			rk.send(1, Message{From: 0, Edges: buf})
			return boom
		})
	})
	if !errors.Is(runErr, boom) {
		t.Fatalf("aborted run returned %v, want boom", runErr)
	}
	if len(c.inboxes[1]) == 0 {
		t.Fatal("precondition: aborted run should have left a stale inbox message")
	}

	// Reuse without Reset is the corruption hazard — it must be refused.
	if err := c.Run(func(rk *Rank) error { return nil }); !errors.Is(err, ErrClusterUsed) {
		t.Fatalf("second run on a used cluster = %v, want ErrClusterUsed", err)
	}

	c.Reset()
	for i, ch := range c.inboxes {
		if n := len(ch); n != 0 {
			t.Fatalf("inbox %d still holds %d stale messages after Reset", i, n)
		}
	}
	if n := c.outstandingBufs(); n != 0 {
		t.Fatalf("%d pooled buffers still outstanding after Reset", n)
	}
	if st := c.Stats(); st.Messages != 0 || st.EdgesRouted != 0 || st.BytesSent != 0 || st.MaxInboxDepth != 0 {
		t.Fatalf("Reset did not zero stats: %+v", st)
	}

	// A real exchange on the reset cluster delivers exactly the fresh
	// edges — the stale (7,7) batch must not reappear.
	received := make([][]graph.Edge, 2)
	runErr = runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			var got []graph.Edge
			err := rk.Exchange(func(emit func(to int, e graph.Edge) bool) {
				for to := 0; to < 2; to++ {
					emit(to, graph.Edge{U: int64(rk.ID()), V: int64(to)})
				}
			}, func(e graph.Edge) {
				got = append(got, e)
			})
			received[rk.ID()] = got
			return err
		})
	})
	if runErr != nil {
		t.Fatalf("post-Reset run failed: %v", runErr)
	}
	for id, got := range received {
		if len(got) != 2 {
			t.Fatalf("rank %d received %d edges after Reset, want 2: %v", id, len(got), got)
		}
		for _, e := range got {
			if e.U == 7 && e.V == 7 {
				t.Fatalf("rank %d received a stale pre-Reset batch: %v", id, got)
			}
		}
	}
}

// TestExchangeAbortReturnsPooledBuffersOnCancel is the buffer-leak
// regression: staged, un-flushed per-destination batches used to vanish
// from the pool whenever an exchange aborted.
func TestExchangeAbortReturnsPooledBuffersOnCancel(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("rank 0 died before exchanging")
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		return c.Run(func(rk *Rank) error {
			if rk.ID() == 0 {
				return boom
			}
			// Stage one small batch per destination (nothing reaches the
			// batchSize flush threshold), then hold the exchange open
			// until teardown so the EOF flush happens on a dead run.
			return rk.Exchange(func(emit func(to int, e graph.Edge) bool) {
				for to := 0; to < 3; to++ {
					emit(to, graph.Edge{U: int64(rk.ID()), V: int64(to)})
				}
				<-rk.Context().Done()
			}, func(graph.Edge) {})
		})
	})
	if !errors.Is(runErr, boom) {
		t.Fatalf("run error = %v, want boom", runErr)
	}
	if n := c.outstandingBufs(); n != 0 {
		t.Fatalf("aborted exchange leaked %d pooled batch buffers", n)
	}
}

// cancelAfterStores cancels the run's context after a global number of
// sink stores, from whichever rank gets there first.
type cancelAfterStores struct {
	inner  Sink
	cancel context.CancelFunc
	after  int64
	n      int64
}

func (s *cancelAfterStores) Rank(rk *Rank) (RankSink, error) {
	rs, err := s.inner.Rank(rk)
	if err != nil {
		return nil, err
	}
	return &cancelAfterRankSink{s: s, inner: rs}, nil
}

type cancelAfterRankSink struct {
	s     *cancelAfterStores
	inner RankSink
}

func (t *cancelAfterRankSink) Store(e graph.Edge) error {
	if atomic.AddInt64(&t.s.n, 1) == t.s.after {
		t.s.cancel()
	}
	return t.inner.Store(e)
}

func (t *cancelAfterRankSink) Close() error { return t.inner.Close() }

// TestStatsConsistentWhenCancelledMidExchange asserts the per-rank
// counters are never torn by teardown: whatever a cancelled run managed
// to do, PerRankStored must equal what each rank's sink actually holds
// and PerRankGenerated must sum to the global counter.
func TestStatsConsistentWhenCancelledMidExchange(t *testing.T) {
	a := gen.ER(20, 0.5, 61)
	b := gen.ER(20, 0.5, 62)
	const r = 4
	plan, err := Plan1D(a, b, r)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mem := NewMemorySink(r)
	sink := &cancelAfterStores{inner: mem, cancel: cancel, after: 1000}
	var st Stats
	runErr := runWithWatchdog(t, chaosWatchdog, func() error {
		var err error
		st, err = Run(ctx, Config{Plan: plan, Owner: OwnerByEdge, Sink: sink})
		return err
	})
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("run error = %v, want context.Canceled", runErr)
	}
	if len(st.PerRankGenerated) != r || len(st.PerRankStored) != r {
		t.Fatalf("per-rank slices missing on cancelled run: %+v", st)
	}
	var sumGen, sumStored int64
	for rk := 0; rk < r; rk++ {
		if g := st.PerRankGenerated[rk]; g < 0 {
			t.Fatalf("rank %d: negative generated count %d", rk, g)
		}
		if got, counted := int64(len(mem.PerRank[rk])), st.PerRankStored[rk]; got != counted {
			t.Fatalf("rank %d: sink holds %d edges but PerRankStored says %d (torn count)", rk, got, counted)
		}
		sumGen += st.PerRankGenerated[rk]
		sumStored += st.PerRankStored[rk]
	}
	if sumGen != st.EdgesGenerated {
		t.Fatalf("per-rank generated sums to %d, global counter %d", sumGen, st.EdgesGenerated)
	}
	if sumStored > sumGen {
		t.Fatalf("stored %d edges but only generated %d", sumStored, sumGen)
	}
	if total := a.NumArcs() * b.NumArcs(); st.EdgesGenerated >= total {
		t.Fatalf("cancellation did not stop expansion: %d of %d", st.EdgesGenerated, total)
	}
}

// TestChaosReplayDeterministic pins the seeded-schedule property: the
// same FaultPlan on a Reset cluster surfaces the same fault.
func TestChaosReplayDeterministic(t *testing.T) {
	a := gen.ER(8, 0.5, 71)
	b := gen.ER(7, 0.5, 72)
	plan, err := planFor(a, b, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	fp := FaultPlan{Seed: 7, Link: LinkFault{DropProb: 1}, MaxRedeliver: 1}
	for round := 0; round < 2; round++ {
		runErr := runWithWatchdog(t, chaosWatchdog, func() error {
			_, err := Run(context.Background(), Config{
				Plan: plan, Owner: OwnerBySource, Sink: NewMemorySink(3), Faults: &fp,
			})
			return err
		})
		if !errors.Is(runErr, ErrMessageLost) {
			t.Fatalf("round %d: want ErrMessageLost, got %v", round, runErr)
		}
	}
}
