package dist

// Cluster-mode tests: the same engine over the TCP transport across
// process boundaries. The parity suite folds a 4-proc cluster into this
// test process (one goroutine per "process", each with its own Node and
// rank range) and diffs the shared on-disk product against the serial
// reference. The kill suite is the real thing: worker *processes*
// (re-execs of this test binary), one of which SIGKILLs itself
// mid-exchange via the wire-level fault schedule, is respawned by the
// driver, and the recovered cluster output must still match the
// reference edge-for-edge.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/dist/ledger"
	"kronlab/internal/dist/transport"
	"kronlab/internal/dist/transport/tcp"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/store"
)

// TestPlanHash pins the handshake fingerprint's sensitivity: identical
// plans hash identically across independent derivations, and any change
// to the decomposition — rank count, partitioning direction — changes it.
func TestPlanHash(t *testing.T) {
	a := gen.PrefAttach(12, 2, 31)
	b := gen.ER(9, 0.5, 32)
	p1, err := Plan1D(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Plan1D(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if PlanHash(p1) != PlanHash(p2) {
		t.Fatal("identical plans hash differently")
	}
	p3, err := Plan1D(a, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if PlanHash(p1) == PlanHash(p3) {
		t.Fatal("different rank counts collide")
	}
	p4, err := Plan2D(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if PlanHash(p1) == PlanHash(p4) {
		t.Fatal("1D and 2D decompositions collide")
	}
}

// TestClusterParity runs a 4-process cluster folded into this test
// process — one goroutine per proc, real TCP between them — for both
// decompositions and an uneven rank split, and asserts the shared store
// holds exactly the serial product.
func TestClusterParity(t *testing.T) {
	a := gen.PrefAttach(12, 2, 31)
	b := gen.ER(9, 0.5, 32)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		r    int
		twoD bool
	}{
		{"1d/r4", 4, false},
		{"1d/r6-uneven", 6, false},
		{"2d/r6-uneven", 6, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const nprocs = 4
			plan, err := planFor(a, b, tc.r, tc.twoD)
			if err != nil {
				t.Fatal(err)
			}
			hash := PlanHash(plan)
			nodes := make([]*tcp.Node, nprocs)
			addrs := make([]string, nprocs)
			for i := range nodes {
				n, err := tcp.NewNode("127.0.0.1:0", i, hash)
				if err != nil {
					t.Fatalf("node %d: %v", i, err)
				}
				defer n.Close()
				nodes[i] = n
				addrs[i] = n.Addr()
			}
			procs := transport.SplitRanks(addrs, tc.r)
			dir := t.TempDir()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			var wg sync.WaitGroup
			stores := make([]*store.Store, nprocs)
			stats := make([]Stats, nprocs)
			errs := make([]error, nprocs)
			for p := 0; p < nprocs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					cc := ClusterConfig{Procs: procs, Self: p, Node: nodes[p]}
					stores[p], stats[p], errs[p] = GenerateClusterToStore(ctx, a, b, dir, tc.twoD, cc, Recovery{})
				}(p)
			}
			wg.Wait()
			for p, err := range errs {
				if err != nil {
					t.Errorf("proc %d: %v", p, err)
				}
			}
			if t.Failed() {
				t.FailNow()
			}
			for p := 1; p < nprocs; p++ {
				if stores[p] != nil {
					t.Fatalf("worker %d returned a store; only the head finalizes", p)
				}
			}
			st := stores[0]
			if st == nil {
				t.Fatal("head returned no store")
			}
			if st.TotalEdges() != want.NumArcs() {
				t.Fatalf("stored %d arcs, want %d", st.TotalEdges(), want.NumArcs())
			}
			got, err := st.LoadGraph()
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatal("cluster product differs from serial reference")
			}
			var gen, stored int64
			for p := 0; p < nprocs; p++ {
				for rk := procs[p].Lo; rk < procs[p].Hi; rk++ {
					gen += stats[p].PerRankGenerated[rk]
					stored += stats[p].PerRankStored[rk]
				}
			}
			if gen != want.NumArcs() || stored != want.NumArcs() {
				t.Fatalf("cluster counters: generated %d stored %d, want %d", gen, stored, want.NumArcs())
			}
		})
	}
}

// TestClusterHandshakeRejectsPlanMismatch asserts a proc that derived a
// different plan cannot join: the mesh refuses it and the error is not
// classified as recoverable (retrying cannot fix a config divergence).
func TestClusterHandshakeRejectsPlanMismatch(t *testing.T) {
	if !clusterRecoverable(&transport.PeerError{Proc: 1, Err: fmt.Errorf("x")}) {
		t.Fatal("peer death must be recoverable")
	}
	if clusterRecoverable(tcp.ErrHandshake) {
		t.Fatal("handshake refusal must not be recoverable")
	}
	if !clusterRecoverable(fmt.Errorf("wrap: %w", errMeshDown)) {
		t.Fatal("mesh establishment failure must be recoverable")
	}
}

// Environment keys of the cluster helper process (see
// TestClusterHelperProcess). The driver re-execs this test binary with
// these set; KILL > 0 arms the wire-level SIGKILL on that worker.
const (
	envClusterHelper  = "KRONLAB_CLUSTER_HELPER"
	envClusterAddrs   = "KRONLAB_CLUSTER_ADDRS"
	envClusterSelf    = "KRONLAB_CLUSTER_SELF"
	envClusterDir     = "KRONLAB_CLUSTER_DIR"
	envClusterKill    = "KRONLAB_CLUSTER_KILL"
	envClusterLedger  = "KRONLAB_CLUSTER_LEDGER"  // head: durable run ledger path
	envClusterRetries = "KRONLAB_CLUSTER_RETRIES" // workers: head re-dial budget
)

// killTestFactors is the fixed factor pair of the crash-recovery
// cluster — seeded generators, so the driver and every helper process
// derive identical plans (and plan hashes) with no factor shipping.
func killTestFactors() (*graph.Graph, *graph.Graph) {
	return gen.PrefAttach(16, 2, 41), gen.ER(10, 0.5, 42)
}

// killTestConfig is the shared shape of the crash-recovery cluster: the
// driver (head) and every helper (worker) derive it independently.
func killTestConfig(dir string, r int) (Config, Plan, error) {
	a, b := killTestFactors()
	plan, err := Plan1D(a, b, r)
	if err != nil {
		return Config{}, Plan{}, err
	}
	return Config{
		Plan:      plan,
		Owner:     OwnerBySource,
		Sink:      NewStoreSink(dir, r),
		BatchSize: 32,
		Recovery:  Recovery{MaxRetries: 3, Backoff: 10 * time.Millisecond},
	}, plan, nil
}

// TestClusterHelperProcess is not a test: it is the worker-process body
// of TestClusterKillRecovery, entered only when the driver re-execs the
// test binary with the helper environment set.
func TestClusterHelperProcess(t *testing.T) {
	if os.Getenv(envClusterHelper) != "1" {
		t.Skip("helper body for TestClusterKillRecovery")
	}
	addrs := strings.Split(os.Getenv(envClusterAddrs), ",")
	self, err := strconv.Atoi(os.Getenv(envClusterSelf))
	if err != nil {
		t.Fatalf("bad self index: %v", err)
	}
	kill, _ := strconv.ParseInt(os.Getenv(envClusterKill), 10, 64)
	cfg, plan, err := killTestConfig(os.Getenv(envClusterDir), len(addrs))
	if err != nil {
		t.Fatal(err)
	}
	if kill > 0 {
		cfg.Faults = &FaultPlan{TCP: transport.TCPFaults{KillAfterFrames: kill}}
	}
	node, err := tcp.NewNode(addrs[self], self, PlanHash(plan))
	if err != nil {
		t.Fatalf("worker %d node: %v", self, err)
	}
	defer node.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	cc := ClusterConfig{Procs: transport.SplitRanks(addrs, plan.R), Self: self, Node: node}
	if lp := os.Getenv(envClusterLedger); lp != "" && self == 0 {
		cc.LedgerPath = lp
	}
	if hr, _ := strconv.Atoi(os.Getenv(envClusterRetries)); hr > 0 {
		cc.HeadRetries = hr
	}
	if _, err := RunCluster(ctx, cc, cfg); err != nil {
		t.Fatalf("proc %d: %v", self, err)
	}
}

// reservePorts allocates n distinct loopback ports by binding and
// releasing listeners. The helper processes re-bind them; the window
// between release and re-bind is the usual accepted race of
// fixed-address multi-process tests.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

// TestClusterKillRecovery is the crash-then-recover contract across real
// process boundaries: a 4-process cluster in which one worker SIGKILLs
// itself mid-exchange (wire fault, buffered state lost with it), the
// driver respawns it fault-free, and the supervised head replays the
// uncommitted tiles — the final store must hold exactly the serial
// product, with the recovery visible in the head's stats.
func TestClusterKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	const nprocs = 4
	const victim = 2
	addrs := reservePorts(t, nprocs)
	dir := t.TempDir()
	cfg, plan, err := killTestConfig(dir, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := killTestFactors()
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	node, err := tcp.NewNode(addrs[0], 0, PlanHash(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spawn := func(self int, kill int64) *exec.Cmd {
		cmd := exec.Command(exe, "-test.run", "^TestClusterHelperProcess$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			envClusterHelper+"=1",
			envClusterAddrs+"="+strings.Join(addrs, ","),
			envClusterSelf+"="+strconv.Itoa(self),
			envClusterDir+"="+dir,
			envClusterKill+"="+strconv.FormatInt(kill, 10),
		)
		cmd.Stderr = os.Stderr
		return cmd
	}

	workers := make(map[int]*exec.Cmd)
	for p := 1; p < nprocs; p++ {
		kill := int64(0)
		if p == victim {
			kill = 5 // SIGKILL after the 5th outbound batch frame
		}
		workers[p] = spawn(p, kill)
		if err := workers[p].Start(); err != nil {
			t.Fatal(err)
		}
	}
	// The victim dies by its own fault schedule; respawn it clean as an
	// external supervisor would, and surface both exit statuses.
	victimDied := make(chan error, 1)
	respawnDone := make(chan error, 1)
	go func() {
		victimDied <- workers[victim].Wait()
		re := spawn(victim, 0)
		if err := re.Start(); err != nil {
			respawnDone <- err
			return
		}
		respawnDone <- re.Wait()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	stats, err := RunCluster(ctx, ClusterConfig{Procs: transport.SplitRanks(addrs, nprocs), Self: 0, Node: node}, cfg)
	if err != nil {
		t.Fatalf("head: %v", err)
	}

	if err := <-victimDied; err == nil {
		t.Fatal("victim worker exited cleanly; the kill fault never fired")
	}
	if err := <-respawnDone; err != nil {
		t.Fatalf("respawned worker: %v", err)
	}
	for p := 1; p < nprocs; p++ {
		if p == victim {
			continue
		}
		if err := workers[p].Wait(); err != nil {
			t.Fatalf("worker %d: %v", p, err)
		}
	}

	if stats.RecoveredRuns != 1 {
		t.Fatalf("RecoveredRuns = %d, want 1", stats.RecoveredRuns)
	}
	var retries int64
	for _, n := range stats.RetriesPerRank {
		retries += n
	}
	if retries == 0 {
		t.Fatal("no retries recorded for a run that lost a process")
	}
	st, err := store.Recover(dir, plan.NC)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalEdges() != want.NumArcs() {
		t.Fatalf("recovered store holds %d arcs, want %d", st.TotalEdges(), want.NumArcs())
	}
	got, err := st.LoadGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("recovered cluster product differs from serial reference")
	}
}

// TestClusterHeadKillRecovery is the tentpole contract: a 4-process TCP
// cluster whose HEAD — the supervisor owning the checkpoint table — is
// SIGKILLed mid-exchange by its own wire fault schedule. The driver
// respawns it as an external supervisor would; the respawned head
// replays its durable ledger, bumps the head generation, re-accepts the
// parked workers (whose joins re-announce their stored prefixes), and
// finishes the run. The final store must match the serial product
// edge-for-edge — zero duplicates, prefix-dedup fencing holding across
// the head generation change — and the ledger must replay to a done run
// with every tile committed.
func TestClusterHeadKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	const nprocs = 4
	addrs := reservePorts(t, nprocs)
	dir := t.TempDir()
	ledgerPath := dir + "/head.ledger"
	_, plan, err := killTestConfig(dir, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := killTestFactors()
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spawn := func(self int, kill int64) *exec.Cmd {
		cmd := exec.Command(exe, "-test.run", "^TestClusterHelperProcess$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			envClusterHelper+"=1",
			envClusterAddrs+"="+strings.Join(addrs, ","),
			envClusterSelf+"="+strconv.Itoa(self),
			envClusterDir+"="+dir,
			envClusterKill+"="+strconv.FormatInt(kill, 10),
			envClusterLedger+"="+ledgerPath,
			envClusterRetries+"=12",
		)
		cmd.Stderr = os.Stderr
		return cmd
	}

	// Workers first (they park dialing the head), then the doomed head:
	// SIGKILL after its 5th outbound batch frame, mid-exchange of epoch 0.
	workers := make(map[int]*exec.Cmd)
	for p := 1; p < nprocs; p++ {
		workers[p] = spawn(p, 0)
		if err := workers[p].Start(); err != nil {
			t.Fatal(err)
		}
	}
	head := spawn(0, 5)
	if err := head.Start(); err != nil {
		t.Fatal(err)
	}

	// The head dies by its own schedule; respawn it clean. The second
	// generation must exit successfully.
	headDied := make(chan error, 1)
	respawnDone := make(chan error, 1)
	go func() {
		headDied <- head.Wait()
		re := spawn(0, 0)
		if err := re.Start(); err != nil {
			respawnDone <- err
			return
		}
		respawnDone <- re.Wait()
	}()

	if err := <-headDied; err == nil {
		t.Fatal("head exited cleanly; the kill fault never fired")
	}
	if err := <-respawnDone; err != nil {
		t.Fatalf("respawned head: %v", err)
	}
	for p := 1; p < nprocs; p++ {
		if err := workers[p].Wait(); err != nil {
			t.Fatalf("worker %d: %v", p, err)
		}
	}

	// The ledger must replay to a completed generation-2 run with the
	// exact committed-tile set.
	lst, err := ledger.Replay(ledgerPath)
	if err != nil {
		t.Fatalf("ledger replay: %v", err)
	}
	if lst.Gen != 2 {
		t.Fatalf("ledger head generation = %d, want 2 (one respawn)", lst.Gen)
	}
	if !lst.Done || lst.DoneErr != "" {
		t.Fatalf("ledger outcome done=%v err=%q, want a clean done record", lst.Done, lst.DoneErr)
	}
	var wantTiles []int
	for _, ts := range plan.Tiles {
		for _, tl := range ts {
			wantTiles = append(wantTiles, tl.ID)
		}
	}
	sort.Ints(wantTiles)
	if got := lst.CommittedTiles(); !reflect.DeepEqual(got, wantTiles) {
		t.Fatalf("ledger committed tiles = %v, want %v", got, wantTiles)
	}

	// Edge-for-edge: exact arc count (zero duplicates) and exact set.
	st, err := store.Recover(dir, plan.NC)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalEdges() != want.NumArcs() {
		t.Fatalf("recovered store holds %d arcs, want %d (duplicates or loss across head generations)",
			st.TotalEdges(), want.NumArcs())
	}
	got, err := st.LoadGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("store after head respawn differs from serial reference")
	}
}
