package dist

import (
	"context"
	"errors"
	"testing"

	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

func TestStreamMatchesProduct(t *testing.T) {
	a := gen.PrefAttach(12, 2, 3)
	b := gen.ER(9, 0.4, 4)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		r    int
		twoD bool
	}{
		{"1d-1", 1, false}, {"1d-4", 4, false}, {"2d-4", 4, true}, {"2d-7", 7, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var arcs []graph.Edge
			stats, err := Stream(context.Background(), a, b, tc.r, tc.twoD, 64, Recovery{},
				func(batch []graph.Edge) error {
					arcs = append(arcs, batch...)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			got, err := graph.New(want.NumVertices(), arcs)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatal("streamed arcs do not rebuild A ⊗ B")
			}
			if stats.EdgesGenerated != a.NumArcs()*b.NumArcs() {
				t.Errorf("EdgesGenerated = %d, want %d", stats.EdgesGenerated, a.NumArcs()*b.NumArcs())
			}
			if stats.EdgesRouted != stats.EdgesGenerated || stats.BytesSent != 16*stats.EdgesGenerated {
				t.Errorf("routing counters inconsistent: %+v", stats)
			}
		})
	}
}

func TestStreamEmitErrorStops(t *testing.T) {
	a := gen.ER(40, 0.3, 1)
	b := gen.ER(40, 0.3, 2)
	sentinel := errors.New("downstream full")
	calls := 0
	_, err := Stream(context.Background(), a, b, 4, false, 32, Recovery{}, func([]graph.Edge) error {
		calls++
		if calls >= 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
}

func TestStreamCancellation(t *testing.T) {
	a := gen.ER(40, 0.3, 5)
	b := gen.ER(40, 0.3, 6)
	ctx, cancel := context.WithCancel(context.Background())
	var got int64
	_, err := Stream(ctx, a, b, 3, true, 16, Recovery{}, func(batch []graph.Edge) error {
		got += int64(len(batch))
		if got > 100 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	total := a.NumArcs() * b.NumArcs()
	if got >= total {
		t.Errorf("cancellation did not stop the stream: saw %d of %d", got, total)
	}
}

func TestStreamBadRanks(t *testing.T) {
	a := gen.Ring(4)
	if _, err := Stream(context.Background(), a, a, 0, false, 0, Recovery{}, func([]graph.Edge) error { return nil }); err == nil {
		t.Error("r=0 should error")
	}
}
