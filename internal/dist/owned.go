package dist

import (
	"kronlab/internal/core"
	"kronlab/internal/graph"
)

// GenerateOwned implements the optimization sketched in Sec. III: "If A
// and B were sorted and placed in a compressed sparse row structure, it
// would be possible for a processor to efficiently generate only the
// edges it must store." With a contiguous source-block storage map
// (OwnerByBlock), the product vertices owned by rank ρ are
// [ρ·⌈n_C/R⌉, …), whose A-side block indices i = α(u) form a contiguous
// range — so each rank walks only those CSR rows of A and emits exactly
// its owned arcs, with zero communication.
//
// The trade-off the paper notes is modularity: this couples generation to
// the storage map (only block maps work), whereas Generate1D/Generate2D
// route edges to arbitrary owner functions.
func GenerateOwned(a, b *graph.Graph, r int) (*Result, error) {
	c, err := NewCluster(r)
	if err != nil {
		return nil, err
	}
	nB := b.NumVertices()
	nC := a.NumVertices() * nB
	per := (nC + int64(r) - 1) / int64(r)
	ix := core.NewIndex(nB)
	res := &Result{NC: nC, PerRank: make([][]graph.Edge, r)}
	err = c.Run(func(rk *Rank) error {
		vlo := int64(rk.ID()) * per
		vhi := vlo + per
		if vhi > nC {
			vhi = nC
		}
		if vlo >= vhi {
			res.PerRank[rk.ID()] = nil
			return nil
		}
		var stored []graph.Edge
		// A-side rows that can produce sources in [vlo, vhi).
		iLo, iHi := ix.Alpha(vlo), ix.Alpha(vhi-1)
		for i := iLo; i <= iHi; i++ {
			for _, j := range a.Neighbors(i) {
				// B-side rows k with γ(i,k) owned: k ∈ [max(0, vlo−i·nB),
				// min(nB, vhi−i·nB)).
				kLo := vlo - i*nB
				if kLo < 0 {
					kLo = 0
				}
				kHi := vhi - i*nB
				if kHi > nB {
					kHi = nB
				}
				for k := kLo; k < kHi; k++ {
					for _, l := range b.Neighbors(k) {
						stored = append(stored, graph.Edge{U: ix.Gamma(i, k), V: ix.Gamma(j, l)})
					}
				}
			}
		}
		res.PerRank[rk.ID()] = stored
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = c.Stats() // all zero: no communication by construction
	return res, nil
}
