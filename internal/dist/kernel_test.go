package dist

// Cross-path equivalence for the blocked expansion/routing kernel: every
// engine configuration — 1D and 2D plans, routed (hash and block owner
// maps) and unrouted sinks, factors with and without full self loops,
// batch sizes down to 1 — must emit exactly the edge multiset of the
// per-edge reference generator core.StreamProduct. The kernel reorders
// work (blocks, radix partitions, batch flushes) but may never change
// what is generated; this test is the property pinning that.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
)

// referenceArcs collects the product edge multiset from the per-edge
// reference path the paper's Sec. II describes and the kernel replaced.
func referenceArcs(a, b *graph.Graph) []graph.Edge {
	var arcs []graph.Edge
	core.StreamProduct(a, b, func(u, v int64) bool {
		arcs = append(arcs, graph.Edge{U: u, V: v})
		return true
	})
	return arcs
}

// TestKernelEquivalence sweeps the engine matrix against StreamProduct.
// Batch sizes include 1 (every edge flushes — maximal message count,
// every tile-boundary and threshold path taken) and small odd values
// that misalign batches with block and tile sizes.
func TestKernelEquivalence(t *testing.T) {
	factors := []struct {
		name string
		a, b *graph.Graph
	}{
		{"er_x_ba", gen.ER(7, 0.5, 401), gen.PrefAttach(6, 2, 402)},
		{"loops_x_rmat", gen.ER(5, 0.6, 403).WithFullSelfLoops(), gen.MustRMAT(gen.Graph500Params(3, 404))},
		{"rmat_x_loops", gen.MustRMAT(gen.Graph500Params(3, 405)), gen.PrefAttach(5, 2, 406).WithFullSelfLoops()},
	}
	owners := []struct {
		name  string
		owner func(nC int64) Owner
	}{
		{"unrouted", func(int64) Owner { return nil }},
		{"byEdge", func(int64) Owner { return OwnerByEdge }},
		{"blockBound", func(nC int64) Owner { return BlockOwner{NC: nC} }},
	}
	for _, f := range factors {
		want, err := graph.New(f.a.NumVertices()*f.b.NumVertices(), referenceArcs(f.a, f.b))
		if err != nil {
			t.Fatal(err)
		}
		for _, twoD := range []bool{false, true} {
			for _, o := range owners {
				for _, batch := range []int{1, 3, 5, DefaultBatchSize} {
					f, twoD, o, batch := f, twoD, o, batch
					name := fmt.Sprintf("%s_%s_%s_batch%d", f.name,
						map[bool]string{false: "1d", true: "2d"}[twoD], o.name, batch)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						const r = 3
						plan, err := planFor(f.a, f.b, r, twoD)
						if err != nil {
							t.Fatal(err)
						}
						ms := NewMemorySink(r)
						cfg := Config{Plan: plan, Sink: ms, BatchSize: batch,
							Owner: o.owner(plan.NC)}
						if _, err := Run(context.Background(), cfg); err != nil {
							t.Fatal(err)
						}
						assertExact(t, plan.NC, mergedArcs(ms), want)
					})
				}
			}
		}
	}
}

// TestRecoverKernelOddBatchSoak replays the supervised-recovery contract
// on the blocked kernel with batch sizes that misalign with tiles and
// blocks (including 1): a mid-expansion crash plus a permanently lost
// batch must still yield the exact reference edge set, because prefix
// deduplication counts edges — it must hold for any batch framing of the
// per-(tile, destination) substreams.
func TestRecoverKernelOddBatchSoak(t *testing.T) {
	a := gen.ER(7, 0.5, 411).WithFullSelfLoops()
	b := gen.PrefAttach(6, 2, 412)
	want, err := core.Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 3, 7} {
		for _, twoD := range []bool{false, true} {
			batch, twoD := batch, twoD
			name := fmt.Sprintf("batch%d_%s", batch, map[bool]string{false: "1d", true: "2d"}[twoD])
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				const r = 3
				plan, err := planFor(a, b, r, twoD)
				if err != nil {
					t.Fatal(err)
				}
				rank, work := plannedWork(plan)
				ms := NewMemorySink(r)
				var st Stats
				runErr := runWithWatchdog(t, chaosWatchdog, func() error {
					var err error
					st, err = Run(context.Background(), Config{
						Plan: plan, Owner: OwnerByEdge, Sink: ms, BatchSize: batch,
						Faults: &FaultPlan{
							Seed:      int64(420 + batch),
							Crashes:   []CrashSpec{{Rank: rank, Point: FaultMidExpansion, After: work / 2}},
							LoseAfter: 1, LoseDeliveries: 1,
						},
						Recovery: Recovery{MaxRetries: 3, Backoff: time.Millisecond},
					})
					return err
				})
				if runErr != nil {
					t.Fatalf("supervised run failed despite retry budget: %v", runErr)
				}
				assertExact(t, plan.NC, mergedArcs(ms), want)
				if st.TotalRetries() == 0 {
					t.Fatal("faults injected but no retry recorded")
				}
				if st.OutstandingBufs != 0 {
					t.Fatalf("recovered run leaked %d pooled buffers", st.OutstandingBufs)
				}
			})
		}
	}
}
