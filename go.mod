module kronlab

go 1.22
