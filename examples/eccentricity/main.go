// Eccentricity: the paper's Fig. 1 workflow on a peer-to-peer-like
// factor. A is a gnutella-like scale-free graph; C = A ⊗ A would have
// ~40M vertices, yet its full eccentricity histogram is computed here in
// milliseconds from the factor (Cor. 4), and validated at reduced scale
// against a distributed BFS-based eccentricity algorithm.
//
// Run with: go run ./examples/eccentricity
package main

import (
	"fmt"
	"log"
	"time"

	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/groundtruth"
	"kronlab/internal/havoq"
)

func main() {
	log.SetFlags(0)

	// The paper's preprocessing: undirected LCC, then full self loops.
	a := gen.GnutellaLike(2019).WithFullSelfLoops()
	fa := groundtruth.NewFactor(a)
	fmt.Printf("factor A (gnutella-like): %v\n", a)

	start := time.Now()
	fa.EnsureDistances()
	fmt.Printf("factor eccentricities computed in %v; diam(A) = %d\n\n",
		time.Since(start).Round(time.Millisecond), fa.Diam)

	fmt.Printf("C = A ⊗ A has %d vertices and %d edges — never materialized.\n",
		fa.N()*fa.N(), groundtruth.NumEdges(fa, fa))
	start = time.Now()
	hist := groundtruth.EccentricityHistogram(fa, fa)
	fmt.Printf("eccentricity histogram of C (Cor. 4) in %v:\n", time.Since(start))
	for e := fa.Diam; e >= 0; e-- {
		if c, ok := hist[e]; ok {
			fmt.Printf("  ε = %2d : %d vertices\n", e, c)
		}
	}

	// Reduced-scale cross-check against a distributed algorithm.
	small, _ := gen.PrefAttach(40, 2, 7).LargestComponent()
	sl := small.WithFullSelfLoops()
	fs := groundtruth.NewFactor(sl)
	fs.EnsureDistances()
	cSmall, err := core.Product(sl, sl)
	if err != nil {
		log.Fatal(err)
	}
	dg, err := havoq.Build(cSmall, 4)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dg.ExactEccentricities()
	if err != nil {
		log.Fatal(err)
	}
	pred := groundtruth.Eccentricities(fs, fs)
	match := 0
	for p := range pred {
		if pred[p] == res.Ecc[p] {
			match++
		}
	}
	fmt.Printf("\nreduced-scale check: distributed eccentricity (%d BFS sweeps on 4 ranks)\n", res.Sweeps)
	fmt.Printf("matches Cor. 4 at %d/%d vertices; diam(C') = %d = max law %d\n",
		match, len(pred), res.Diameter(), groundtruth.Diameter(fs, fs))
}
