// Quickstart: build two small factors, form their Kronecker product both
// serially and on a simulated cluster, and read off ground-truth
// analytics for the product from the factors alone.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/dist"
	"kronlab/internal/gen"
	"kronlab/internal/groundtruth"
)

func main() {
	log.SetFlags(0)

	// Two small scale-free-ish factors.
	a := gen.PrefAttach(30, 2, 1)
	b := gen.MustRMAT(gen.Graph500Params(5, 2))
	fmt.Printf("factor A: %v\nfactor B: %v\n", a, b)

	// Serial product.
	c, err := core.Product(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("product C = A ⊗ B: %v\n\n", c)

	// The same product on a simulated 4-rank cluster; every edge lands on
	// the rank chosen by the owner function.
	res, err := dist.Generate1D(a, b, 4, dist.OwnerBySource)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed generation on %d ranks: %d edges generated, %d routed, %d bytes\n",
		4, res.Stats.EdgesGenerated, res.Stats.EdgesRouted, res.Stats.BytesSent)
	collected, err := res.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed == serial: %v\n\n", collected.Equal(c))

	// Ground truth from factors, validated against direct measurement.
	fa, fb := groundtruth.NewFactor(a), groundtruth.NewFactor(b)
	fmt.Printf("ground-truth vertex count: %d (measured %d)\n",
		groundtruth.NumVertices(fa, fb), c.NumVertices())
	fmt.Printf("ground-truth edge count:   %d (measured %d)\n",
		groundtruth.NumEdges(fa, fb), c.NumEdges())
	fmt.Printf("ground-truth triangles:    %d (measured %d)\n",
		groundtruth.GlobalTriangles(fa, fb), analytics.GlobalTriangles(c))

	// Per-vertex ground truth at an arbitrary product vertex.
	p := int64(137)
	ix := core.NewIndex(fb.N())
	i, k := ix.Split(p)
	fmt.Printf("\nvertex p=%d decomposes as (i=%d, k=%d):\n", p, i, k)
	fmt.Printf("  degree    d_p = d_i·d_k = %d (measured %d)\n",
		groundtruth.DegreeAt(fa, fb, p), c.Degree(p))
	fmt.Printf("  triangles t_p = 2·t_i·t_k = %d (measured %d)\n",
		groundtruth.VertexTrianglesAt(fa, fb, p), analytics.Triangles(c).Vertex[p])
}
