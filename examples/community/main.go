// Community: the paper's Sec. VI workflow. A stochastic block model with
// planted communities is squared via C = (A+I) ⊗ (A+I); every product
// community's internal and external edge counts and densities come from
// Thm. 6 in closed form, and the Cor. 6/7 scaling laws are checked.
//
// Run with: go run ./examples/community
package main

import (
	"fmt"
	"log"

	"kronlab/internal/analytics"
	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/groundtruth"
)

func main() {
	log.SetFlags(0)

	// A factor with 5 planted communities.
	a, pa := gen.SBM(gen.SBMParams{
		BlockSizes: gen.EqualBlocks(5, 24),
		PIn:        0.4, POut: 0.02, Seed: 42,
	})
	fa := groundtruth.NewFactor(a)
	statsA := analytics.Communities(a, pa)
	fmt.Printf("factor A: %v with %d communities\n", a, len(pa))
	for i, s := range statsA {
		fmt.Printf("  S_A^(%d): |S|=%d  m_in=%d  m_out=%d  ρ_in=%.3f  ρ_out=%.4f\n",
			i, s.Size, s.MIn, s.MOut, s.RhoIn, s.RhoOut)
	}

	// Product communities — all 25 of them — from Thm. 6, no product
	// materialization required.
	statsC := groundtruth.CommunitiesKron(fa, fa, pa, pa, statsA, statsA)
	fmt.Printf("\nC = (A+I) ⊗ (A+I): %d vertices, %d Kronecker communities (Def. 16)\n",
		fa.N()*fa.N(), len(statsC))
	fmt.Println("first few product communities (Thm. 6 ground truth):")
	for i := 0; i < 5; i++ {
		s := statsC[i]
		fmt.Printf("  S_C^(%d): |S|=%d  m_in=%d  m_out=%d  ρ_in=%.4f  ρ_out=%.6f\n",
			i, s.Size, s.MIn, s.MOut, s.RhoIn, s.RhoOut)
	}

	// Validate one community against the materialized product.
	c, err := core.ProductWithSelfLoops(a, a)
	if err != nil {
		log.Fatal(err)
	}
	sc := core.KronSet(pa[1], pa[2], fa.N())
	measured := analytics.Community(c, sc)
	predicted := groundtruth.CommunityKron(fa, fa, statsA[1], statsA[2])
	fmt.Printf("\nvalidation on S_A^(1) ⊗ S_A^(2): predicted m_in=%d m_out=%d, measured m_in=%d m_out=%d\n",
		predicted.MIn, predicted.MOut, measured.MIn, measured.MOut)

	// Scaling-law bounds.
	lo := groundtruth.RhoInLowerBound(statsA[1], statsA[2])
	hi := groundtruth.RhoOutUpperBound(fa, fa, statsA[1], statsA[2])
	fmt.Printf("Cor. 6: ρ_in = %.5f ≥ %.5f (⅓·ρ_in·ρ_in bound)  %v\n",
		predicted.RhoIn, lo, predicted.RhoIn >= lo)
	fmt.Printf("Cor. 7 (corrected): ρ_out = %.6f ≤ %.6f  %v\n",
		predicted.RhoOut, hi, predicted.RhoOut <= hi)
}
