// Scaling: the paper's Sec. III / Rem. 1 story. Generate the same product
// on increasing simulated cluster sizes with both 1D and 2D partitioning,
// and watch per-rank work, replicated storage and communication volume —
// including the 1D scalability wall at |arcs_A| ranks.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"kronlab/internal/dist"
	"kronlab/internal/gen"
)

func main() {
	log.SetFlags(0)

	a := gen.MustRMAT(gen.Graph500Params(6, 10))
	b := gen.MustRMAT(gen.Graph500Params(6, 11))
	fmt.Printf("A: %v (%d arcs), B: %v (%d arcs), product arcs: %d\n\n",
		a, a.NumArcs(), b, b.NumArcs(), a.NumArcs()*b.NumArcs())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "R\tmode\tbusy ranks\tmax stored/rank\trouted edges\tbytes sent")
	for _, r := range []int{1, 2, 4, 8, 16, 32} {
		res1, err := dist.Generate1D(a, b, r, dist.OwnerByEdge)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%d\t1D\t%d\t%d\t%d\t%d\n",
			r, dist.EffectiveParallelism1D(a, r), res1.MaxRankStorage(),
			res1.Stats.EdgesRouted, res1.Stats.BytesSent)
		res2, err := dist.Generate2D(a, b, r, dist.OwnerByEdge)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%d\t2D\t%d\t%d\t%d\t%d\n",
			r, dist.EffectiveParallelism2D(a, b, r), res2.MaxRankStorage(),
			res2.Stats.EdgesRouted, res2.Stats.BytesSent)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThe Rem. 1 wall: a tiny A (ring of 16 → 32 arcs) against a big B.")
	tiny := gen.Ring(16)
	for _, r := range []int{16, 32, 64, 128} {
		fmt.Printf("  R=%3d: 1D busy ranks %3d, 2D busy ranks %3d\n",
			r, dist.EffectiveParallelism1D(tiny, r), dist.EffectiveParallelism2D(tiny, b, r))
	}
}
