// Validation: the paper's motivating use case (Sec. I). When validating a
// new distributed analytic at scales where no trusted implementation can
// run, nonstochastic Kronecker products give exact expected answers. Here
// a correct and a subtly buggy triangle counter are both run on a
// generated product; the Kronecker ground truth convicts the buggy one.
//
// Run with: go run ./examples/validation
package main

import (
	"fmt"
	"log"

	"kronlab/internal/core"
	"kronlab/internal/gen"
	"kronlab/internal/graph"
	"kronlab/internal/groundtruth"
	"kronlab/internal/havoq"
)

func main() {
	log.SetFlags(0)

	// Benchmark input: C = A ⊗ B from two scale-free factors.
	a := gen.PrefAttach(50, 3, 1)
	b := gen.MustRMAT(gen.Graph500Params(6, 2))
	fa, fb := groundtruth.NewFactor(a), groundtruth.NewFactor(b)
	c, err := core.Product(a, b)
	if err != nil {
		log.Fatal(err)
	}
	want := groundtruth.GlobalTriangles(fa, fb)
	fmt.Printf("benchmark graph C = A ⊗ B: %v\n", c)
	fmt.Printf("ground-truth global triangles (6·τ_A·τ_B): %d\n\n", want)

	// System under test 1: the distributed counter.
	dg, err := havoq.Build(c, 4)
	if err != nil {
		log.Fatal(err)
	}
	got := dg.Triangles().Global
	fmt.Printf("distributed counter:        %12d  %s\n", got, verdict(got == want))

	// System under test 2: a buggy counter that forgets to exclude the
	// wedge endpoints when intersecting neighborhoods — a classic
	// off-by-self error that only bites on graphs with self loops.
	cl, err := core.ProductWithSelfLoops(a, b)
	if err != nil {
		log.Fatal(err)
	}
	got = buggyTriangleCount(cl)
	wantLoops := groundtruth.GlobalTrianglesFullLoops(fa, fb)
	fmt.Printf("buggy counter (on (A+I)⊗(B+I)): %12d  %s (ground truth %d)\n",
		got, verdict(got == wantLoops), wantLoops)

	// The same buggy code passes on a loop-free graph — which is why the
	// paper's point matters: validation needs ground truth on inputs that
	// exercise the failure mode, and Kronecker products make those cheap
	// to generate at any scale.
	got = buggyTriangleCount(c)
	fmt.Printf("buggy counter (on C):       %12d  %s — bug invisible without loops\n",
		got, verdict(got == want))
}

// buggyTriangleCount intersects full sorted neighborhoods without
// excluding the edge endpoints, so any self loop at a common neighbor —
// or at the endpoints themselves — inflates the count.
func buggyTriangleCount(g *graph.Graph) int64 {
	var sum int64
	g.Edges(func(u, v int64) bool {
		if u == v {
			return true
		}
		nu, nv := g.Neighbors(u), g.Neighbors(v)
		i, j := 0, 0
		for i < len(nu) && j < len(nv) {
			switch {
			case nu[i] < nv[j]:
				i++
			case nu[i] > nv[j]:
				j++
			default:
				sum++ // BUG: counts w == u and w == v too
				i++
				j++
			}
		}
		return true
	})
	return sum / 3
}

func verdict(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
